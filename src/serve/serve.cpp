#include "serve/serve.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "analyze/analyze.h"
#include "common/alloc_stats.h"
#include "common/arena.h"
#include "common/error.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/obs.h"
#include "runtime/executor.h"

namespace ftdl::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Lower bucket edges: quarter-octave geometric series from 1 µs.
const std::array<double, LatencyHistogram::kBuckets>& bucket_lo_table() {
  static const std::array<double, LatencyHistogram::kBuckets> table = [] {
    std::array<double, LatencyHistogram::kBuckets> t{};
    constexpr double kRatio = 1.189207115002721;  // 2^(1/4)
    double v = 1.0;
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      t[static_cast<std::size_t>(i)] = v;
      v *= kRatio;
    }
    return t;
  }();
  return table;
}

double bucket_hi(int b) {
  const auto& t = bucket_lo_table();
  if (b + 1 < LatencyHistogram::kBuckets)
    return t[static_cast<std::size_t>(b + 1)];
  return t[static_cast<std::size_t>(b)] * 1.189207115002721;
}

}  // namespace

void LatencyHistogram::record(double us) {
  us = std::max(us, 0.0);
  const auto& t = bucket_lo_table();
  auto it = std::upper_bound(t.begin(), t.end(), us);
  const int b = std::clamp(static_cast<int>(it - t.begin()) - 1, 0,
                           kBuckets - 1);
  ++counts_[static_cast<std::size_t>(b)];
  if (count_ == 0) {
    min_ = max_ = us;
  } else {
    min_ = std::min(min_, us);
    max_ = std::max(max_, us);
  }
  ++count_;
  sum_ += us;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Fractional 0-based rank (numpy-style linear interpolation), located in
  // its bucket and interpolated across the bucket's width. Clamping to the
  // exact [min, max] envelope keeps constant samples exact and every
  // estimate inside the observed range.
  const double rank = p / 100.0 * double(count_ - 1);
  const auto& t = bucket_lo_table();
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t n = counts_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (rank <= double(seen + n - 1)) {
      const double lo = t[static_cast<std::size_t>(b)];
      const double hi = bucket_hi(b);
      const double frac =
          std::clamp((rank - double(seen) + 0.5) / double(n), 0.0, 1.0);
      return std::clamp(lo + (hi - lo) * frac, min_, max_);
    }
    seen += n;
  }
  return max_;
}

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::Stopped: return "stopped";
    case RejectReason::BadRequest: return "bad_request";
  }
  return "unknown";
}

namespace {

struct Request {
  std::uint64_t id = 0;
  nn::Tensor16 input;
  std::promise<InferenceResult> promise;
  Clock::time_point enqueue_time;
};

}  // namespace

struct Server::Impl {
  nn::Network net;
  runtime::WeightStore weights;
  ServerOptions opt;

  mutable Mutex mu;
  CondVar cv;  ///< queue / pause / stop transitions
  std::deque<Request> queue FTDL_GUARDED_BY(mu);
  bool accepting FTDL_GUARDED_BY(mu) = true;
  bool paused FTDL_GUARDED_BY(mu) = false;
  std::uint64_t next_id FTDL_GUARDED_BY(mu) = 1;
  std::uint64_t next_batch FTDL_GUARDED_BY(mu) = 1;
  ServerStats stats FTDL_GUARDED_BY(mu);

  Mutex stop_mu;  ///< serializes stop() (idempotent join)
  bool stopped FTDL_GUARDED_BY(stop_mu) = false;
  std::vector<std::thread> workers;

  Impl(nn::Network n, runtime::WeightStore w, ServerOptions o)
      : net(std::move(n)), weights(std::move(w)), opt(o) {}

  /// Cheap admission-time shape check against the first layer. Layers the
  /// check cannot constrain (concat/ewop heads) admit anything; execution
  /// still validates and surfaces errors through the future.
  bool shape_ok(const nn::Tensor16& t) const {
    const nn::Layer& first = net.layers().front();
    switch (first.kind) {
      case nn::LayerKind::Conv:
      case nn::LayerKind::Depthwise:
      case nn::LayerKind::Pool:
        return t.dims() == nn::Dims{first.in_c, first.in_h, first.in_w};
      case nn::LayerKind::MatMul:
        return t.size() == first.mm_m * first.mm_p;
      default:
        return true;
    }
  }

  void worker_loop(int w) {
    obs::set_thread_track_name("serve-" + std::to_string(w));
    // Per-worker execution context: graph analysis, compiled programs,
    // weight-group slices and the tensor arena warm up once per worker;
    // steady-state requests then run without heap allocations (LayerRun
    // records are skipped — serve only consumes output and cycle totals).
    runtime::ExecOptions eopt = opt.exec;
    eopt.collect_runs = false;
    std::optional<runtime::ExecContext> exec;
    std::exception_ptr init_err;
    try {
      exec.emplace(net, weights, eopt);
    } catch (...) {
      // Warm-up rejected the network (recurrent layers, missing weights,
      // compile failure). The worker still drains the queue, failing each
      // request with this error through its future — admission-time checks
      // cannot catch everything, and a wedged worker would hang stop().
      init_err = std::current_exception();
    }
    ArenaStats last_arena;  // previous snapshot, for per-batch count deltas
    std::vector<Request> batch;  // capacity reused across batches
    for (;;) {
      batch.clear();
      std::uint64_t batch_id = 0;
      {
        MutexLock lock(mu);
        for (;;) {
          while (!((!paused && !queue.empty()) ||
                   (!accepting && queue.empty()))) {
            cv.wait(mu);
          }
          if (queue.empty()) return;  // stopped and drained
          // Dynamic batching: wait for batch-mates until the oldest pending
          // request has waited batch_timeout_us, the batch is full, or the
          // server is draining. The deque is only mutated under `mu`, so
          // the coalesced requests are taken atomically below.
          const auto deadline =
              queue.front().enqueue_time +
              std::chrono::microseconds(opt.batch_timeout_us);
          bool timed_out = opt.batch_timeout_us == 0;
          while (!timed_out && accepting && !paused &&
                 queue.size() < static_cast<std::size_t>(opt.max_batch)) {
            timed_out = cv.wait_until(mu, deadline) == std::cv_status::timeout;
          }
          // Another worker may have drained the queue while this one
          // slept, and pause() suspends dispatch; re-enter the idle wait.
          if (paused || queue.empty()) continue;
          break;
        }
        const std::size_t n =
            std::min(queue.size(), static_cast<std::size_t>(opt.max_batch));
        batch_id = next_batch++;
        batch.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
        }
        ++stats.batches;
        stats.batched_requests += static_cast<std::int64_t>(n);
        stats.max_batch_observed =
            std::max(stats.max_batch_observed, static_cast<std::int64_t>(n));
        if (obs::enabled()) {
          obs::count("serve/batches");
          obs::count("serve/batched_requests", static_cast<std::int64_t>(n));
          obs::gauge("serve/queue_depth", double(queue.size()));
        }
      }
      execute_batch(w, batch_id, batch, exec ? &*exec : nullptr, init_err,
                    last_arena);
    }
  }

  void execute_batch(int w, std::uint64_t batch_id,
                     std::vector<Request>& batch, runtime::ExecContext* exec,
                     const std::exception_ptr& init_err,
                     ArenaStats& last_arena) {
    const Clock::time_point dispatch = Clock::now();
    std::optional<obs::ScopedSpan> batch_span;
    if (obs::enabled()) {
      batch_span.emplace("serve", "batch",
                         obs::SpanArgs{{"batch", std::to_string(batch_id)},
                                       {"size", std::to_string(batch.size())}});
    }
    for (Request& req : batch) {
      InferenceResult res;
      res.request_id = req.id;
      res.worker = w;
      res.batch_id = batch_id;
      res.batch_size = static_cast<int>(batch.size());
      res.queue_us = us_between(req.enqueue_time, dispatch);
      std::exception_ptr err;
      {
        std::optional<obs::ScopedSpan> span;
        if (obs::enabled()) {
          span.emplace("serve", "execute",
                       obs::SpanArgs{{"request", std::to_string(req.id)}});
        }
        // Count heap allocations while the request executes: the zero-alloc
        // steady-state contract of tests/test_serve.cpp. Two thread-local
        // increments when no counting allocator is linked in.
        alloc_stats::ArmScope arm;
        if (exec == nullptr) {
          err = init_err;
        } else {
          try {
            runtime::ExecResult er = exec->run(req.input);
            res.output = std::move(er.output);
            res.total_sim_cycles = er.total_sim_cycles;
          } catch (...) {
            err = std::current_exception();
          }
        }
      }
      const Clock::time_point done = Clock::now();
      res.execute_us = us_between(dispatch, done);
      res.latency_us = us_between(req.enqueue_time, done);
      {
        MutexLock lock(mu);
        if (err) {
          ++stats.failed;
        } else {
          ++stats.completed;
          stats.latency.record(res.latency_us);
        }
      }
      obs::count(err ? "serve/requests_failed" : "serve/requests_completed");
      if (err) {
        req.promise.set_exception(err);
      } else {
        req.promise.set_value(std::move(res));
      }
    }
    // Arena activity of this batch, as counter deltas against the previous
    // snapshot (counts are monotonic; the pool itself reports totals), plus
    // the pool's high-water mark.
    if (exec != nullptr && obs::enabled()) {
      const ArenaStats a = exec->arena_stats();
      obs::count("runtime/arena_bytes", a.bytes_allocated - last_arena.bytes_allocated);
      obs::count("runtime/arena_reuses", a.reuses - last_arena.reuses);
      obs::count("runtime/arena_fallback_allocs",
                 a.fallback_allocs - last_arena.fallback_allocs);
      obs::gauge("runtime/arena_high_water_bytes", double(a.high_water_bytes));
      last_arena = a;
    }
  }
};

Server::Server(nn::Network net, runtime::WeightStore weights,
               ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(net), std::move(weights),
                                   options)) {
  const ServerOptions& opt = impl_->opt;
  if (opt.workers < 1) throw ConfigError("serve: workers must be >= 1");
  if (opt.max_batch < 1) throw ConfigError("serve: max_batch must be >= 1");
  if (opt.queue_depth < 1) throw ConfigError("serve: queue_depth must be >= 1");
  if (opt.batch_timeout_us < 0)
    throw ConfigError("serve: batch_timeout_us must be >= 0");
  impl_->net.validate_graph();
  if (impl_->net.layers().empty())
    throw ConfigError("serve: cannot serve an empty network");
  const std::vector<std::string> sinks = impl_->net.sink_names();
  if (sinks.size() != 1) {
    throw ConfigError(impl_->net.name() +
                      ": serving needs exactly one sink layer, found " +
                      std::to_string(sinks.size()));
  }
  // Full graph-family static analysis (shape agreement, dead layers,
  // cycles) before any worker starts; a long-lived server must not accept
  // traffic for a network that cannot execute end to end.
  const analyze::AnalysisResult ar =
      analyze::analyze_graph(impl_->net, analyze::GraphStrictness::Serving);
  if (!ar.ok()) {
    throw ConfigError(impl_->net.name() + ": static analysis rejected: " +
                      ar.first_error()->to_string());
  }
  impl_->workers.reserve(static_cast<std::size_t>(opt.workers));
  for (int w = 0; w < opt.workers; ++w) {
    impl_->workers.emplace_back([this, w] { impl_->worker_loop(w); });
  }
}

Server::~Server() { stop(); }

Submission Server::submit(nn::Tensor16 input) {
  Impl& im = *impl_;
  Submission s;
  if (!im.shape_ok(input)) {
    s.reject_reason = RejectReason::BadRequest;
    MutexLock lock(im.mu);
    ++im.stats.rejected_bad_request;
    if (obs::enabled()) {
      obs::count("serve/requests_rejected");
      obs::count("serve/rejected_bad_request");
    }
    return s;
  }
  obs::ScopedSpan span("serve", "enqueue");
  MutexLock lock(im.mu);
  if (!im.accepting) {
    s.reject_reason = RejectReason::Stopped;
    ++im.stats.rejected_stopped;
    if (obs::enabled()) {
      obs::count("serve/requests_rejected");
      obs::count("serve/rejected_stopped");
    }
    span.add_arg("rejected", "stopped");
    return s;
  }
  if (im.queue.size() >= im.opt.queue_depth) {
    s.reject_reason = RejectReason::QueueFull;
    ++im.stats.rejected_queue_full;
    if (obs::enabled()) {
      obs::count("serve/requests_rejected");
      obs::count("serve/rejected_queue_full");
    }
    span.add_arg("rejected", "queue_full");
    return s;
  }
  Request req;
  req.id = im.next_id++;
  req.input = std::move(input);
  req.enqueue_time = Clock::now();
  s.accepted = true;
  s.request_id = req.id;
  span.add_arg("request", std::to_string(req.id));
  s.result = req.promise.get_future();
  im.queue.push_back(std::move(req));
  ++im.stats.accepted;
  im.stats.peak_queue_depth =
      std::max(im.stats.peak_queue_depth,
               static_cast<std::int64_t>(im.queue.size()));
  if (obs::enabled()) {
    obs::count("serve/requests_accepted");
    obs::gauge("serve/queue_depth", double(im.queue.size()));
  }
  lock.unlock();
  im.cv.notify_all();
  return s;
}

void Server::stop() {
  Impl& im = *impl_;
  MutexLock stop_lock(im.stop_mu);
  if (im.stopped) return;
  {
    MutexLock lock(im.mu);
    im.accepting = false;
    im.paused = false;  // draining must always complete
  }
  im.cv.notify_all();
  for (std::thread& t : im.workers) t.join();
  im.stopped = true;
  if (obs::enabled()) {
    MutexLock lock(im.mu);
    const LatencyHistogram& h = im.stats.latency;
    obs::gauge("serve/latency_p50_us", h.percentile(50.0));
    obs::gauge("serve/latency_p95_us", h.percentile(95.0));
    obs::gauge("serve/latency_p99_us", h.percentile(99.0));
    obs::gauge("serve/latency_mean_us", h.mean_us());
    obs::gauge("serve/latency_max_us", h.max_us());
    obs::gauge("serve/queue_depth", 0.0);
  }
}

void Server::pause() {
  MutexLock lock(impl_->mu);
  impl_->paused = true;
}

void Server::resume() {
  {
    MutexLock lock(impl_->mu);
    impl_->paused = false;
  }
  impl_->cv.notify_all();
}

std::size_t Server::queue_depth() const {
  MutexLock lock(impl_->mu);
  return impl_->queue.size();
}

ServerStats Server::stats() const {
  MutexLock lock(impl_->mu);
  return impl_->stats;
}

const ServerOptions& Server::options() const { return impl_->opt; }

const nn::Network& Server::network() const { return impl_->net; }

}  // namespace ftdl::serve
