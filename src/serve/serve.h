// ftdl::serve — a batched, concurrent inference serving runtime.
//
// The ROADMAP north star is serving heavy traffic, and the substrates for
// it already exist: a thread-safe content-addressed CompilerSession
// (src/compiler/session.h) and a deterministic functional runtime
// (src/runtime/executor.h) whose cycle-sim path rides the fast engine.
// This module is the component that accepts a *stream of requests* and
// drives those substrates at saturation:
//
//   * a bounded MPMC request queue with admission control — a submit
//     against a full queue (or a stopped/shape-mismatched request) is
//     rejected immediately with a reason, never silently dropped or
//     unboundedly buffered (backpressure is the caller's signal to slow
//     down);
//   * a dynamic batcher — an idle worker coalesces up to `max_batch`
//     pending requests, waiting at most `batch_timeout_us` from the oldest
//     request's enqueue before dispatching what it has (timeout 0 =
//     dispatch immediately, no coalescing wait);
//   * a pool of `workers` threads, each executing its batch through
//     runtime::run_network on the configured path (scalar reference or
//     compiled cycle-level simulation).
//
// Determinism contract (extends docs/simulator.md): every request's output
// is a deterministic pure function of (network, weights, input, ExecOptions)
// — run_network holds that on both paths, the CompilerSession cache is
// content-addressed with bit-identical programs at any jobs value, and
// workers share no mutable state beyond that cache and the obs registry.
// Per-request results are therefore BIT-IDENTICAL to a serial
// one-at-a-time run at any worker count, batch size, queue depth or
// arrival order (pinned by tests/test_serve.cpp).
//
// Observability (all under obs::set_enabled, catalog in docs/serving.md):
// per-request wall-clock spans `enqueue` (submitter's track) and
// `execute` nested in a per-batch `batch` span on per-worker `serve-<w>`
// tracks; counters for accepted/rejected(by reason)/completed/failed
// requests and batches; a `serve/queue_depth` gauge; and a log-scale
// latency histogram whose p50/p95/p99 land in the metrics JSON as gauges
// when the server stops.
#pragma once

#include <array>
#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "nn/network.h"
#include "nn/tensor.h"
#include "runtime/executor.h"
#include "runtime/weight_store.h"

namespace ftdl::serve {

/// Fixed-memory log-scale latency histogram (microsecond domain). Buckets
/// are quarter-octaves (width 2^(1/4), ~19 % relative resolution) spanning
/// 1 µs to ~2^40 µs; exact min/max/sum are kept alongside, so percentiles
/// of a constant sample are exact and every percentile lies in [min, max].
class LatencyHistogram {
 public:
  static constexpr int kSubPerOctave = 4;
  static constexpr int kOctaves = 40;
  static constexpr int kBuckets = kOctaves * kSubPerOctave;

  void record(double us);

  std::int64_t count() const { return count_; }
  double sum_us() const { return sum_; }
  double min_us() const { return count_ ? min_ : 0.0; }
  double max_us() const { return count_ ? max_ : 0.0; }
  double mean_us() const { return count_ ? sum_ / double(count_) : 0.0; }

  /// Percentile `p` in [0, 100], linearly interpolated inside the owning
  /// bucket and clamped to the exact [min, max] envelope. 0 when empty.
  double percentile(double p) const;

 private:
  std::array<std::int64_t, kBuckets> counts_{};
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Why a submission was not admitted.
enum class RejectReason {
  QueueFull,   ///< pending queue at ServerOptions::queue_depth (backpressure)
  Stopped,     ///< server stopped accepting (stop() was called)
  BadRequest,  ///< input tensor shape incompatible with the network input
};

const char* to_string(RejectReason r);

struct ServerOptions {
  /// Worker threads executing batches (>= 1). Results are bit-identical at
  /// any value; this sets only throughput.
  int workers = 2;
  /// Largest batch one worker dispatches at once (>= 1).
  int max_batch = 8;
  /// Longest a pending request may wait for batch-mates, measured from the
  /// *oldest* queued request's enqueue. 0 dispatches immediately.
  std::int64_t batch_timeout_us = 2'000;
  /// Admission bound on pending (queued, not yet dispatched) requests.
  std::size_t queue_depth = 64;
  /// Per-request execution options (path, overlay config, sim_jobs, ...).
  runtime::ExecOptions exec;
};

/// One completed inference.
struct InferenceResult {
  std::uint64_t request_id = 0;
  nn::Tensor16 output;                 ///< the network's sink-layer tensor
  std::int64_t total_sim_cycles = 0;   ///< cycle-sim path only
  double queue_us = 0.0;               ///< enqueue -> dispatch
  double execute_us = 0.0;             ///< dispatch -> complete
  double latency_us = 0.0;             ///< enqueue -> complete
  int worker = -1;                     ///< executing worker index
  std::uint64_t batch_id = 0;
  int batch_size = 0;                  ///< size of the dispatched batch
};

/// Outcome of Server::submit. Exactly one of {accepted with a valid
/// future, rejected with a reason} holds.
struct Submission {
  bool accepted = false;
  RejectReason reject_reason = RejectReason::QueueFull;  ///< if !accepted
  std::uint64_t request_id = 0;                          ///< if accepted
  /// Resolves to the result, or rethrows the execution error (e.g.
  /// ConfigError from a malformed graph) when the request failed.
  std::future<InferenceResult> result;
};

/// Monotonic accounting; every accepted request ends up completed or
/// failed exactly once, and accepted + rejected() == submitted.
struct ServerStats {
  std::int64_t accepted = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_stopped = 0;
  std::int64_t rejected_bad_request = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;             ///< future carries the exception
  std::int64_t batches = 0;            ///< dispatches
  std::int64_t batched_requests = 0;   ///< sum of dispatched batch sizes
  std::int64_t peak_queue_depth = 0;
  std::int64_t max_batch_observed = 0;
  LatencyHistogram latency;            ///< enqueue -> complete, µs

  std::int64_t rejected() const {
    return rejected_queue_full + rejected_stopped + rejected_bad_request;
  }
  double mean_batch_size() const {
    return batches ? double(batched_requests) / double(batches) : 0.0;
  }
};

/// A serving runtime that owns one compiled model (weights + options) and
/// executes submitted inputs on a worker pool. Construction validates the
/// graph (including the unique-sink requirement of run_network) and starts
/// the workers; stop() — or destruction — stops admission, drains every
/// pending request and joins.
class Server {
 public:
  /// Throws ftdl::ConfigError on an invalid graph or invalid options.
  Server(nn::Network net, runtime::WeightStore weights, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission-controlled, non-blocking enqueue. Thread-safe (MPMC).
  Submission submit(nn::Tensor16 input);

  /// Stops admission, drains pending requests, joins the workers and
  /// publishes the latency-percentile gauges. Idempotent.
  void stop();

  /// Suspends / resumes dispatch (pending requests stay queued; admission
  /// is unaffected). Deterministic-backpressure hook: pause, fill the
  /// queue, observe exact rejection accounting, resume. stop() resumes
  /// implicitly so draining always completes.
  void pause();
  void resume();

  /// Pending (queued, not yet dispatched) requests right now.
  std::size_t queue_depth() const;

  ServerStats stats() const;
  const ServerOptions& options() const;
  const nn::Network& network() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftdl::serve
