#include "verify/verifier.h"

#include <algorithm>
#include <climits>

#include "common/str_util.h"

namespace ftdl::verify {

namespace {

constexpr std::uint64_t kImmMask = (std::uint64_t{1} << 48) - 1;

/// Configuration registers the Launch instruction reads.
enum Reg { kRegX = 0, kRegL, kRegT, kRegAct, kRegPsum, kRegMode, kRegBase, kNumRegs };

const char* reg_name(int reg) {
  switch (reg) {
    case kRegX: return "LoopX trip";
    case kRegL: return "LoopL trip";
    case kRegT: return "LoopT trip";
    case kRegAct: return "ActBUF tile";
    case kRegPsum: return "PSumBUF tile";
    case kRegMode: return "psum mode";
    case kRegBase: return "weight base";
  }
  return "?";
}

bool is_config_op(arch::Opcode op) {
  switch (op) {
    case arch::Opcode::SetLoop:
    case arch::Opcode::SetActTile:
    case arch::Opcode::SetPsumTile:
    case arch::Opcode::SetPsumMode:
    case arch::Opcode::SetWeightBase:
      return true;
    default:
      return false;
  }
}

/// Register a config instruction writes, or -1 (unknown SetLoop level).
int config_reg(const arch::Instruction& inst) {
  switch (inst.op) {
    case arch::Opcode::SetLoop:
      switch (static_cast<arch::TemporalLevel>(inst.field)) {
        case arch::TemporalLevel::X: return kRegX;
        case arch::TemporalLevel::L: return kRegL;
        case arch::TemporalLevel::T: return kRegT;
        default: return -1;
      }
    case arch::Opcode::SetActTile: return kRegAct;
    case arch::Opcode::SetPsumTile: return kRegPsum;
    case arch::Opcode::SetPsumMode: return kRegMode;
    case arch::Opcode::SetWeightBase: return kRegBase;
    default: return -1;
  }
}

class StreamChecker {
 public:
  StreamChecker(const arch::InstStream& stream, const arch::OverlayConfig& config,
                const StreamExpectation* expected)
      : stream_(stream), config_(config), expected_(expected) {
    std::fill(write_index_, write_index_ + kNumRegs, -1);
  }

  VerifyResult run() {
    for (int i = 0; i < static_cast<int>(stream_.size()); ++i) {
      step(i, stream_[static_cast<std::size_t>(i)]);
    }
    finish();
    result_.state = state_;
    return std::move(result_);
  }

 private:
  void diag(Severity sev, Check check, int index, std::string message) {
    result_.diagnostics.push_back(
        Diagnostic{sev, check, index, std::move(message)});
  }
  void error(Check check, int index, std::string message) {
    diag(Severity::Error, check, index, std::move(message));
  }
  void warn(Check check, int index, std::string message) {
    diag(Severity::Warning, check, index, std::move(message));
  }

  void step(int i, const arch::Instruction& inst) {
    if (static_cast<std::uint8_t>(inst.op) >
        static_cast<std::uint8_t>(arch::Opcode::Barrier)) {
      error(Check::UnknownOpcode, i,
            strformat("unknown opcode %u",
                      static_cast<unsigned>(static_cast<std::uint8_t>(inst.op))));
      return;
    }
    if (inst.imm > kImmMask) {
      error(Check::ImmOverflow, i,
            strformat("immediate %llu exceeds the 48-bit encoding",
                      static_cast<unsigned long long>(inst.imm)));
    }
    if (!arch::field_is_valid(inst.op, inst.field)) {
      error(Check::UnknownField, i,
            strformat("field %u is undefined for %s",
                      static_cast<unsigned>(inst.field),
                      arch::to_string(inst.op)));
    }
    if (saw_barrier_) {
      error(Check::CodeAfterBarrier, i,
            "instruction after the terminal Barrier");
    }

    if (is_config_op(inst.op)) {
      if (state_.launched && !saw_barrier_) {
        error(Check::ConfigAfterLaunch, i,
              strformat("%s after Launch has no effect on the running layer",
                        arch::to_string(inst.op)));
      }
      apply_config(i, inst);
      return;
    }

    switch (inst.op) {
      case arch::Opcode::Nop:
        break;
      case arch::Opcode::Launch:
        on_launch(i);
        break;
      case arch::Opcode::Barrier:
        on_barrier(i);
        break;
      default:
        break;
    }
  }

  void apply_config(int i, const arch::Instruction& inst) {
    const int reg = config_reg(inst);
    if (reg < 0) return;  // undefined SetLoop level, already diagnosed

    if (!state_.launched && write_index_[reg] >= 0) {
      warn(Check::DeadConfig, write_index_[reg],
           strformat("%s write is dead: overwritten at @%d before Launch",
                     reg_name(reg), i));
    }
    write_index_[reg] = i;

    switch (inst.op) {
      case arch::Opcode::SetLoop:
        if (inst.imm == 0) {
          error(Check::ZeroTrip, i,
                strformat("zero %s: the loop would never issue", reg_name(reg)));
          return;  // keep the architectural default of 1
        }
        if (reg == kRegX) state_.x_trip = inst.imm;
        if (reg == kRegL) state_.l_trip = inst.imm;
        if (reg == kRegT) state_.t_trip = inst.imm;
        break;
      case arch::Opcode::SetActTile:
        state_.act_tile_words = inst.imm;
        if (inst.imm == 0) {
          warn(Check::DegenerateTile, i, "zero-word ActBUF tile configured");
        } else if (inst.imm >
                   static_cast<std::uint64_t>(config_.actbuf_usable())) {
          error(Check::ActBufOverflow, i,
                strformat("act tile of %llu words exceeds the usable ActBUF "
                          "capacity of %lld (double-buffered %lld)",
                          static_cast<unsigned long long>(inst.imm),
                          static_cast<long long>(config_.actbuf_usable()),
                          static_cast<long long>(config_.actbuf_words)));
        }
        break;
      case arch::Opcode::SetPsumTile:
        state_.psum_tile_words = inst.imm;
        if (inst.imm == 0) {
          warn(Check::DegenerateTile, i, "zero-word PSumBUF tile configured");
        } else if (inst.imm >
                   static_cast<std::uint64_t>(config_.psumbuf_usable())) {
          error(Check::PsumBufOverflow, i,
                strformat("psum tile of %llu words exceeds the usable PSumBUF "
                          "capacity of %lld (double-buffered %lld)",
                          static_cast<unsigned long long>(inst.imm),
                          static_cast<long long>(config_.psumbuf_usable()),
                          static_cast<long long>(config_.psumbuf_words)));
        }
        break;
      case arch::Opcode::SetPsumMode:
        state_.psum_accumulate = inst.field != 0;
        break;
      case arch::Opcode::SetWeightBase: {
        state_.weight_base = inst.imm;
        const std::uint64_t footprint =
            expected_ ? expected_->weight_footprint_words : 0;
        if (inst.imm + footprint >
            static_cast<std::uint64_t>(config_.wbuf_words)) {
          error(Check::WbufOverflow, i,
                strformat("weight base %llu + footprint %llu words exceeds "
                          "the WBUF capacity of %lld",
                          static_cast<unsigned long long>(inst.imm),
                          static_cast<unsigned long long>(footprint),
                          static_cast<long long>(config_.wbuf_words)));
        }
        break;
      }
      default:
        break;
    }
  }

  void on_launch(int i) {
    if (state_.launched) {
      error(Check::DoubleLaunch, i, "second Launch in one stream");
      return;
    }
    state_.launched = true;
    launch_index_ = i;
    launch_state_ = state_;
    std::copy(write_index_, write_index_ + kNumRegs, write_at_launch_);

    std::string missing;
    for (int reg : {kRegX, kRegL, kRegT, kRegAct, kRegPsum}) {
      if (write_index_[reg] < 0) {
        if (!missing.empty()) missing += ", ";
        missing += reg_name(reg);
      }
    }
    if (!missing.empty()) {
      error(Check::IncompleteConfig, i,
            "Launch before configuration is complete: " + missing + " never set");
    }
  }

  void on_barrier(int i) {
    if (saw_barrier_) {
      error(Check::CodeAfterBarrier, i, "second Barrier in one stream");
      return;
    }
    if (!state_.launched) {
      error(Check::MissingLaunch, i, "Barrier before Launch: nothing to drain");
      reported_missing_launch_ = true;
    }
    saw_barrier_ = true;
  }

  void finish() {
    if (!state_.launched && !reported_missing_launch_) {
      error(Check::MissingLaunch, -1, "stream never launches");
    }
    if (state_.launched && !saw_barrier_) {
      error(Check::MissingBarrier, -1,
            "stream missing the terminal Barrier: the row never drains");
    }
    if (expected_ && state_.launched) check_expectation();
  }

  /// Index to blame for a semantic mismatch on `reg`: the write Launch
  /// consumed, or the Launch itself when the register kept its default.
  int blame(int reg) const {
    return write_at_launch_[reg] >= 0 ? write_at_launch_[reg] : launch_index_;
  }

  void check_expectation() {
    const StreamExpectation& e = *expected_;
    const arch::ControllerState& st = launch_state_;

    const struct { int reg; std::uint64_t got, want; const char* axis; } trips[] = {
        {kRegX, st.x_trip, e.x_trip, "X"},
        {kRegL, st.l_trip, e.l_trip, "L"},
        {kRegT, st.t_trip, e.t_trip, "T"},
    };
    for (const auto& t : trips) {
      if (write_at_launch_[t.reg] < 0) continue;  // IncompleteConfig already
      if (t.got != t.want) {
        error(Check::TripMismatch, blame(t.reg),
              strformat("stream sets %s trip %llu but the mapping solved %llu",
                        t.axis, static_cast<unsigned long long>(t.got),
                        static_cast<unsigned long long>(t.want)));
      }
    }
    if (write_at_launch_[kRegAct] >= 0 && st.act_tile_words != e.act_tile_words) {
      error(Check::TileMismatch, blame(kRegAct),
            strformat("stream sets an ActBUF tile of %llu words but the "
                      "buffer sizing requires %llu",
                      static_cast<unsigned long long>(st.act_tile_words),
                      static_cast<unsigned long long>(e.act_tile_words)));
    }
    if (write_at_launch_[kRegPsum] >= 0 &&
        st.psum_tile_words != e.psum_tile_words) {
      error(Check::TileMismatch, blame(kRegPsum),
            strformat("stream sets a PSumBUF tile of %llu words but the "
                      "buffer sizing requires %llu",
                      static_cast<unsigned long long>(st.psum_tile_words),
                      static_cast<unsigned long long>(e.psum_tile_words)));
    }
    if (st.psum_accumulate != e.psum_accumulate) {
      std::string msg =
          st.psum_accumulate
              ? "accumulate mode set but the mapping has a single psum pass"
              : "overwrite mode set but the mapping's reduction split needs "
                "accumulation";
      if (st.psum_accumulate && e.weight_groups > 1) {
        msg += strformat(" (each of the %d weight-group passes would "
                         "accumulate into stale psums)",
                         e.weight_groups);
      }
      error(Check::PsumModeMismatch, blame(kRegMode), std::move(msg));
    }
    // A default weight base of 0 still has to leave room for the tile.
    if (write_at_launch_[kRegBase] < 0 &&
        e.weight_footprint_words >
            static_cast<std::uint64_t>(config_.wbuf_words)) {
      error(Check::WbufOverflow, launch_index_,
            strformat("weight footprint of %llu words exceeds the WBUF "
                      "capacity of %lld",
                      static_cast<unsigned long long>(e.weight_footprint_words),
                      static_cast<long long>(config_.wbuf_words)));
    }
  }

  const arch::InstStream& stream_;
  const arch::OverlayConfig& config_;
  const StreamExpectation* expected_;

  VerifyResult result_;
  arch::ControllerState state_;
  arch::ControllerState launch_state_;
  int write_index_[kNumRegs];
  int write_at_launch_[kNumRegs] = {-1, -1, -1, -1, -1, -1, -1};
  int launch_index_ = -1;
  bool saw_barrier_ = false;
  bool reported_missing_launch_ = false;
};

}  // namespace

const char* to_string(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

const char* to_string(Check c) {
  switch (c) {
    case Check::UnknownOpcode: return "unknown-opcode";
    case Check::UnknownField: return "unknown-field";
    case Check::MissingLaunch: return "missing-launch";
    case Check::DoubleLaunch: return "double-launch";
    case Check::ConfigAfterLaunch: return "config-after-launch";
    case Check::MissingBarrier: return "missing-barrier";
    case Check::CodeAfterBarrier: return "code-after-barrier";
    case Check::IncompleteConfig: return "incomplete-config";
    case Check::ImmOverflow: return "imm-overflow";
    case Check::ZeroTrip: return "zero-trip";
    case Check::DegenerateTile: return "degenerate-tile";
    case Check::ActBufOverflow: return "actbuf-overflow";
    case Check::PsumBufOverflow: return "psumbuf-overflow";
    case Check::WbufOverflow: return "wbuf-overflow";
    case Check::TripMismatch: return "trip-mismatch";
    case Check::TileMismatch: return "tile-mismatch";
    case Check::PsumModeMismatch: return "psum-mode-mismatch";
    case Check::DeadConfig: return "dead-config";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  if (index < 0) {
    return strformat("%s[%s]: %s", verify::to_string(severity),
                     verify::to_string(check), message.c_str());
  }
  return strformat("%s[%s] @%d: %s", verify::to_string(severity),
                   verify::to_string(check), index, message.c_str());
}

int VerifyResult::errors() const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::Error; }));
}

int VerifyResult::warnings() const {
  return static_cast<int>(diagnostics.size()) - errors();
}

const Diagnostic* VerifyResult::first_error() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Error) return &d;
  }
  return nullptr;
}

std::string VerifyResult::to_string() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

VerifyResult verify_stream(const arch::InstStream& stream,
                           const arch::OverlayConfig& config,
                           const StreamExpectation* expected) {
  return StreamChecker(stream, config, expected).run();
}

arch::InstStream decode_lenient(const std::vector<std::uint64_t>& words) {
  arch::InstStream stream;
  stream.reserve(words.size());
  for (const std::uint64_t w : words) {
    const auto opcode = static_cast<std::uint8_t>(w >> 56);
    if (opcode > static_cast<std::uint8_t>(arch::Opcode::Barrier)) {
      stream.push_back(arch::Instruction{});  // hold the index with a Nop
    } else {
      stream.push_back(arch::decode(w));
    }
  }
  return stream;
}

VerifyResult verify_words(const std::vector<std::uint64_t>& words,
                          const arch::OverlayConfig& config,
                          const StreamExpectation* expected) {
  // Decode by hand so an undecodable word becomes a diagnostic (and a Nop
  // placeholder) instead of the exception arch::decode would throw.
  std::vector<Diagnostic> decode_diags;
  for (int i = 0; i < static_cast<int>(words.size()); ++i) {
    const std::uint64_t w = words[static_cast<std::size_t>(i)];
    const auto opcode = static_cast<std::uint8_t>(w >> 56);
    if (opcode > static_cast<std::uint8_t>(arch::Opcode::Barrier)) {
      decode_diags.push_back(Diagnostic{
          Severity::Error, Check::UnknownOpcode, i,
          strformat("word %016llx does not decode: unknown opcode %u",
                    static_cast<unsigned long long>(w),
                    static_cast<unsigned>(opcode))});
    }
  }
  VerifyResult result = verify_stream(decode_lenient(words), config, expected);
  result.diagnostics.insert(result.diagnostics.begin(), decode_diags.begin(),
                            decode_diags.end());
  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     const int ai = a.index < 0 ? INT_MAX : a.index;
                     const int bi = b.index < 0 ? INT_MAX : b.index;
                     return ai < bi;
                   });
  return result;
}

std::string annotate(const arch::InstStream& stream,
                     const VerifyResult& result) {
  std::string out;
  for (int i = 0; i < static_cast<int>(stream.size()); ++i) {
    out += strformat("%4d: %s\n", i,
                     stream[static_cast<std::size_t>(i)].to_string().c_str());
    for (const Diagnostic& d : result.diagnostics) {
      if (d.index == i) {
        out += strformat("      !! %s[%s]: %s\n", to_string(d.severity),
                         to_string(d.check), d.message.c_str());
      }
    }
  }
  for (const Diagnostic& d : result.diagnostics) {
    if (d.index < 0 || d.index >= static_cast<int>(stream.size())) {
      out += strformat("      !! %s\n", d.to_string().c_str());
    }
  }
  return out;
}

}  // namespace ftdl::verify
