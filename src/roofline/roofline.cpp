#include "roofline/roofline.h"

#include "common/csv.h"
#include "common/error.h"
#include "common/str_util.h"

namespace ftdl::roofline {

namespace {

/// Mean total-storage inflation of a scatter: practical WBUF bytes are
/// unique-weights / E_WBUF, so 1/E_WBUF is the per-solution inflation.
double mean_inflation(const std::vector<RooflinePoint>& pts) {
  if (pts.empty()) return 0.0;
  double sum = 0.0;
  for (const RooflinePoint& p : pts) sum += 1.0 / std::max(p.e_wbuf, 1e-9);
  return sum / double(pts.size());
}

double best_gops(const std::vector<RooflinePoint>& pts) {
  double best = 0.0;
  for (const RooflinePoint& p : pts) best = std::max(best, p.gops);
  return best;
}

}  // namespace

double RooflineStudy::wbuf_savings() const {
  const double balance = mean_inflation(balance_points);
  return balance > 0.0 ? mean_inflation(performance_points) / balance : 0.0;
}

double RooflineStudy::best_gops_performance() const {
  return best_gops(performance_points);
}

double RooflineStudy::best_gops_balance() const {
  return best_gops(balance_points);
}

RooflinePoint to_point(const compiler::Solution& s, const compiler::Workload& w,
                       const arch::OverlayConfig& config) {
  RooflinePoint p;
  const double ops = 2.0 * double(w.macs());
  const double bytes = s.perf.dram_rd_bytes + s.perf.dram_wr_bytes;
  p.arithmetic_intensity = bytes > 0.0 ? ops / bytes : 0.0;
  p.gops = ops / s.perf.seconds(config) / 1e9;
  p.e_wbuf = s.perf.e_wbuf;
  p.c_exe = s.perf.c_exe;
  p.wbuf_words_per_tpe = s.perf.buffers.wbuf_words_per_tpe;
  return p;
}

RooflineStudy run_roofline_study(const nn::Layer& layer,
                                 const arch::OverlayConfig& config,
                                 int top_k, std::int64_t max_candidates) {
  const compiler::Workload w = compiler::Workload::from_layer(layer);

  RooflineStudy study;
  study.peak_gops = 2.0 * double(config.tpes()) * config.clocks.clk_h_hz / 1e9;
  study.dram_gbps =
      (config.dram_rd_bytes_per_sec + config.dram_wr_bytes_per_sec) / 1e9;

  for (compiler::Objective obj :
       {compiler::Objective::Performance, compiler::Objective::Balance}) {
    compiler::SearchOptions opt;
    opt.objective = obj;
    opt.top_k = top_k;
    opt.max_candidates = max_candidates;
    const compiler::SearchResult r = compiler::search_mappings(w, config, opt);
    auto& dst = (obj == compiler::Objective::Performance)
                    ? study.performance_points
                    : study.balance_points;
    dst.reserve(r.top.size());
    for (const compiler::Solution& s : r.top) {
      dst.push_back(to_point(s, w, config));
    }
  }
  return study;
}

std::string export_csv(const RooflineStudy& study, const std::string& path) {
  CsvWriter csv(path, {"objective", "arithmetic_intensity", "gops", "e_wbuf",
                       "c_exe", "wbuf_words_per_tpe"});
  auto dump = [&csv](const char* tag, const std::vector<RooflinePoint>& pts) {
    for (const RooflinePoint& p : pts) {
      csv.row({tag, strformat("%.6g", p.arithmetic_intensity),
               strformat("%.6g", p.gops), strformat("%.6g", p.e_wbuf),
               std::to_string(p.c_exe), std::to_string(p.wbuf_words_per_tpe)});
    }
  };
  dump("performance", study.performance_points);
  dump("balance", study.balance_points);
  return path;
}

}  // namespace ftdl::roofline
