// Roofline-based performance visualization (Sec. V-C1, Fig. 7).
//
// For a layer on a given overlay, each mapping solution becomes a point
// (arithmetic intensity, attainable GOPS) colored by its WBUF efficiency.
// The tool exports the top-k scatter for both objectives plus the roofline
// itself (compute roof = 2 * #TPE * CLKh; memory roof = AI * DRAM bw), and
// the WBUF-savings summary the paper highlights (Obj.2 saves ~5x WBUF over
// Obj.1 at a slight performance loss).
#pragma once

#include <string>
#include <vector>

#include "compiler/search.h"

namespace ftdl::roofline {

struct RooflinePoint {
  double arithmetic_intensity = 0.0;  ///< ops per DRAM byte
  double gops = 0.0;                  ///< attained throughput
  double e_wbuf = 0.0;                ///< color axis of Fig. 7
  std::int64_t c_exe = 0;
  std::int64_t wbuf_words_per_tpe = 0;
};

struct RooflineStudy {
  double peak_gops = 0.0;             ///< compute roof
  /// Memory-roof slope: combined read+write channel bandwidth. With
  /// separate RD/WR channels, time >= (rd+wr)/(bw_rd+bw_wr), so
  /// GOPS <= AI * (bw_rd + bw_wr) holds rigorously.
  double dram_gbps = 0.0;
  std::vector<RooflinePoint> performance_points;  ///< Obj.1 top-k
  std::vector<RooflinePoint> balance_points;      ///< Obj.2 top-k

  /// WBUF storage savings of Obj.2 over Obj.1: the ratio of the two
  /// scatters' mean storage inflation 1/E_WBUF (the paper's ~5x).
  double wbuf_savings() const;
  /// Best attainable GOPS under each objective.
  double best_gops_performance() const;
  double best_gops_balance() const;
};

/// Converts one solved mapping to a roofline point.
RooflinePoint to_point(const compiler::Solution& s, const compiler::Workload& w,
                       const arch::OverlayConfig& config);

/// Runs the two top-k searches (Obj.1, Obj.2) for one layer.
RooflineStudy run_roofline_study(const nn::Layer& layer,
                                 const arch::OverlayConfig& config,
                                 int top_k = 200,
                                 std::int64_t max_candidates = 200'000);

/// Writes a study to CSV (columns: objective, ai, gops, e_wbuf, c_exe,
/// wbuf_words). Returns the path written.
std::string export_csv(const RooflineStudy& study, const std::string& path);

}  // namespace ftdl::roofline
