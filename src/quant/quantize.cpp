#include "quant/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "nn/reference.h"

namespace ftdl::quant {

QuantParams calibrate(const TensorF& t, int bits) {
  if (bits < 2 || bits > 16) throw ConfigError("quantization bits must be 2..16");
  float maxabs = 0.0f;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    maxabs = std::max(maxabs, std::abs(t[i]));
  }
  QuantParams p;
  p.bits = bits;
  const float top_code = float((1 << (bits - 1)) - 1);
  p.scale = maxabs > 0.0f ? maxabs / top_code : 1.0f;
  return p;
}

nn::Tensor16 quantize(const TensorF& t, const QuantParams& p) {
  const long lo = -(1L << (p.bits - 1));
  const long hi = (1L << (p.bits - 1)) - 1;
  nn::Tensor16 out(t.dims());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    const long code = std::lround(double(t[i]) / p.scale);
    out[i] = static_cast<std::int16_t>(std::clamp(code, lo, hi));
  }
  return out;
}

TensorF dequantize(const nn::Tensor16& t, const QuantParams& p) {
  TensorF out(t.dims());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    out[i] = float(t[i]) * p.scale;
  }
  return out;
}

TensorF conv2d_float(const nn::Layer& layer, const TensorF& input,
                     const TensorF& weights) {
  FTDL_ASSERT(layer.kind == nn::LayerKind::Conv);
  const int oh = layer.out_h(), ow = layer.out_w();
  TensorF out({layer.out_c, oh, ow});
  for (int m = 0; m < layer.out_c; ++m) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        double acc = 0.0;
        for (int n = 0; n < layer.in_c; ++n) {
          for (int r = 0; r < layer.kh; ++r) {
            const int iy = y * layer.stride + r - layer.pad;
            if (iy < 0 || iy >= layer.in_h) continue;
            for (int s = 0; s < layer.kw; ++s) {
              const int ix = x * layer.stride + s - layer.pad;
              if (ix < 0 || ix >= layer.in_w) continue;
              acc += double(weights.at(m, n, r, s)) * input.at(n, iy, ix);
            }
          }
        }
        out.at(m, y, x) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

TensorF matmul_float(const nn::Layer& layer, const TensorF& act,
                     const TensorF& weights) {
  FTDL_ASSERT(layer.kind == nn::LayerKind::MatMul);
  const int m_dim = static_cast<int>(layer.mm_m);
  const int n_dim = static_cast<int>(layer.mm_n);
  const int p_dim = static_cast<int>(layer.mm_p);
  TensorF out({n_dim, p_dim});
  for (int n = 0; n < n_dim; ++n) {
    for (int p = 0; p < p_dim; ++p) {
      double acc = 0.0;
      for (int m = 0; m < m_dim; ++m) {
        acc += double(weights.at(n, m)) * act.at(m, p);
      }
      out.at(n, p) = static_cast<float>(acc);
    }
  }
  return out;
}

double sqnr_db(const TensorF& reference, const TensorF& test) {
  if (reference.dims() != test.dims())
    throw ConfigError("SQNR needs matching tensor shapes");
  double signal = 0.0, noise = 0.0;
  for (std::int64_t i = 0; i < reference.size(); ++i) {
    signal += double(reference[i]) * reference[i];
    const double e = double(reference[i]) - test[i];
    noise += e * e;
  }
  if (noise == 0.0) return 200.0;
  if (signal == 0.0) return 0.0;
  return 10.0 * std::log10(signal / noise);
}

void fill_random_float(TensorF& t, std::uint64_t seed, float magnitude) {
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    // Triangular distribution on (-1, 1): sum of two uniforms, centred.
    const double v = rng.uniform01() + rng.uniform01() - 1.0;
    t[i] = static_cast<float>(v) * magnitude;
  }
}

LayerQuantStudy study_layer(const nn::Layer& layer, int bits,
                            std::uint64_t seed) {
  LayerQuantStudy study;
  study.bits = bits;

  TensorF input_f, weights_f;
  if (layer.kind == nn::LayerKind::Conv) {
    input_f = TensorF({layer.in_c, layer.in_h, layer.in_w});
    weights_f = TensorF({layer.out_c, layer.in_c, layer.kh, layer.kw});
  } else if (layer.kind == nn::LayerKind::MatMul) {
    input_f = TensorF({static_cast<int>(layer.mm_m),
                       static_cast<int>(layer.mm_p)});
    weights_f = TensorF({static_cast<int>(layer.mm_n),
                         static_cast<int>(layer.mm_m)});
  } else {
    throw ConfigError(layer.name + ": quant study covers CONV and MM layers");
  }
  fill_random_float(input_f, seed);
  fill_random_float(weights_f, seed + 1, 0.5f);

  const QuantParams qa = calibrate(input_f, bits);
  const QuantParams qw = calibrate(weights_f, bits);
  const nn::Tensor16 input_q = quantize(input_f, qa);
  const nn::Tensor16 weights_q = quantize(weights_f, qw);

  study.weight_sqnr_db = sqnr_db(weights_f, dequantize(weights_q, qw));

  // Exact integer path (what the overlay computes), rescaled to float by
  // the product of the two scales.
  const nn::AccTensor acc =
      layer.kind == nn::LayerKind::Conv
          ? nn::conv2d_reference(layer, input_q, weights_q)
          : nn::matmul_reference(layer, input_q, weights_q);
  TensorF out_q(acc.dims());
  const double out_scale = double(qa.scale) * qw.scale;
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    out_q[i] = static_cast<float>(double(acc[i]) * out_scale);
  }

  const TensorF out_f = layer.kind == nn::LayerKind::Conv
                            ? conv2d_float(layer, input_f, weights_f)
                            : matmul_float(layer, input_f, weights_f);
  study.output_sqnr_db = sqnr_db(out_f, out_q);
  return study;
}

}  // namespace ftdl::quant
