// Quantization study: why 16-bit fixed point is the paper's choice.
//
// Sec. II-B1 adopts 16-bit weight quantization "with the quantization
// technique [13]". This module provides the float-domain reference path,
// a symmetric max-abs quantizer at arbitrary bit widths, and SQNR
// (signal-to-quantization-noise) measurement of the quantized datapath
// against the float reference — so the 16-vs-8-bit trade the paper takes
// for granted is measurable in this repository.
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "nn/tensor.h"

namespace ftdl::quant {

/// Float tensors reuse the generic dense container.
using TensorF = nn::TensorT<float>;

/// Symmetric (zero-point-free) quantization parameters.
struct QuantParams {
  int bits = 16;      ///< total bits incl. sign, in [2, 16]
  float scale = 1.0f; ///< float value of one LSB
};

/// Max-abs calibration: the largest magnitude maps to the top code.
QuantParams calibrate(const TensorF& t, int bits);

/// Quantizes to int16 codes (saturating round-to-nearest). Codes use the
/// `bits`-wide range even though storage is int16 — exactly how a 16-bit
/// datapath runs lower-precision models.
nn::Tensor16 quantize(const TensorF& t, const QuantParams& p);

/// Reconstructs float values from codes.
TensorF dequantize(const nn::Tensor16& t, const QuantParams& p);

/// Float-domain references mirroring nn::conv2d_reference / matmul layouts.
TensorF conv2d_float(const nn::Layer& layer, const TensorF& input,
                     const TensorF& weights);
TensorF matmul_float(const nn::Layer& layer, const TensorF& act,
                     const TensorF& weights);

/// Signal-to-quantization-noise ratio in dB (+inf-free: returns 200 dB when
/// the error is exactly zero). Throws ftdl::ConfigError on shape mismatch.
double sqnr_db(const TensorF& reference, const TensorF& test);

/// Fills a float tensor with a deterministic triangular(-1,1) sample —
/// a stand-in for trained-weight/activation distributions.
void fill_random_float(TensorF& t, std::uint64_t seed, float magnitude = 1.0f);

/// End-to-end layer study: float reference vs the quantized integer path
/// (weights and activations quantized at `bits`, exact integer MACs,
/// result dequantized by the product scale).
struct LayerQuantStudy {
  int bits = 0;
  double output_sqnr_db = 0.0;
  double weight_sqnr_db = 0.0;
};
LayerQuantStudy study_layer(const nn::Layer& layer, int bits,
                            std::uint64_t seed);

}  // namespace ftdl::quant
