// Host-side element-wise kernels on the int16 quantized domain.
//
// The EWOP class of Table I runs on the host CPU (Sec. II-A): activations,
// residual adds, pooling, and — for LSTMs — the gate nonlinearities. The
// nonlinearities use 512-entry lookup tables over Q4.12 inputs producing
// Q1.14 outputs, the standard fixed-point treatment on embedded hosts.
#pragma once

#include <cstdint>

#include "common/fixed_point.h"
#include "nn/tensor.h"

namespace ftdl::host {

/// Fixed-point formats of the LSTM cell kernels.
inline constexpr int kGateInFracBits = 12;   ///< Q4.12 gate pre-activation
inline constexpr int kGateOutFracBits = 14;  ///< Q1.14 gate activation

/// Saturating int16 addition.
std::int16_t sat_add(std::int16_t a, std::int16_t b);

/// LUT sigmoid: Q4.12 in -> Q1.14 out, monotone, sigmoid(0) = 0.5.
std::int16_t sigmoid_q(std::int16_t x);

/// LUT tanh: Q4.12 in -> Q1.14 out, odd function, tanh(0) = 0.
std::int16_t tanh_q(std::int16_t x);

/// Element-wise tensor ops (all saturating).
void relu_inplace(nn::Tensor16& t);
nn::Tensor16 add(const nn::Tensor16& a, const nn::Tensor16& b);

/// One LSTM cell update on the quantized domain:
///   c' = f*c + i*g ; h' = o * tanh(c')
/// where i/f/o are sigmoid(pre) and g is tanh(pre), all Q4.12 inputs.
/// `c` is Q4.12 state. Returns h' in Q1.14-scaled-back-to-Q4.12.
struct LstmCellState {
  nn::Tensor16 c;  ///< cell state, Q4.12
  nn::Tensor16 h;  ///< hidden state, Q4.12
};
void lstm_cell_update(const nn::Tensor16& pre_i, const nn::Tensor16& pre_f,
                      const nn::Tensor16& pre_g, const nn::Tensor16& pre_o,
                      LstmCellState& state);

}  // namespace ftdl::host
