#include "host/ewop_kernels.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace ftdl::host {

namespace {

constexpr int kLutBits = 9;  // 512 intervals, 513 knots
constexpr int kLutSize = 1 << kLutBits;

/// Knot table for f over the Q4.12 input range [-8, 8]; lookups linearly
/// interpolate between knots, keeping the error well under one output LSB
/// of typical gate activations.
std::array<std::int16_t, kLutSize + 1> build_lut(double (*f)(double)) {
  std::array<std::int16_t, kLutSize + 1> lut{};
  for (int i = 0; i <= kLutSize; ++i) {
    const double x_fixed = double(i) / kLutSize * 65536.0 - 32768.0;
    const double x = x_fixed / double(1 << kGateInFracBits);
    const double y = f(x);
    lut[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(std::clamp(
        std::lround(y * double(1 << kGateOutFracBits)),
        long(std::numeric_limits<std::int16_t>::min()),
        long(std::numeric_limits<std::int16_t>::max())));
  }
  return lut;
}

double sigmoid_d(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double tanh_d(double x) { return std::tanh(x); }

std::int16_t lookup(const std::array<std::int16_t, kLutSize + 1>& lut,
                    std::int16_t x) {
  const int u = int(x) + 32768;                    // 0 .. 65535
  const int idx = u >> (16 - kLutBits);            // knot index
  const int frac = u & ((1 << (16 - kLutBits)) - 1);
  const int a = lut[static_cast<std::size_t>(idx)];
  const int b = lut[static_cast<std::size_t>(idx + 1)];
  return static_cast<std::int16_t>(
      a + ((b - a) * frac >> (16 - kLutBits)));
}

}  // namespace

std::int16_t sat_add(std::int16_t a, std::int16_t b) {
  return requantize(acc_t{a} + acc_t{b}, 0);
}

std::int16_t sigmoid_q(std::int16_t x) {
  static const auto lut = build_lut(sigmoid_d);
  return lookup(lut, x);
}

std::int16_t tanh_q(std::int16_t x) {
  static const auto lut = build_lut(tanh_d);
  return lookup(lut, x);
}

void relu_inplace(nn::Tensor16& t) {
  for (std::int64_t i = 0; i < t.size(); ++i) t[i] = relu(t[i]);
}

nn::Tensor16 add(const nn::Tensor16& a, const nn::Tensor16& b) {
  FTDL_ASSERT(a.dims() == b.dims());
  nn::Tensor16 out(a.dims());
  for (std::int64_t i = 0; i < a.size(); ++i) out[i] = sat_add(a[i], b[i]);
  return out;
}

void lstm_cell_update(const nn::Tensor16& pre_i, const nn::Tensor16& pre_f,
                      const nn::Tensor16& pre_g, const nn::Tensor16& pre_o,
                      LstmCellState& state) {
  FTDL_ASSERT(pre_i.dims() == pre_f.dims() && pre_f.dims() == pre_g.dims() &&
              pre_g.dims() == pre_o.dims());
  FTDL_ASSERT(state.c.dims() == pre_i.dims());
  FTDL_ASSERT(state.h.dims() == pre_i.dims());

  for (std::int64_t k = 0; k < pre_i.size(); ++k) {
    const acc_t i_g = sigmoid_q(pre_i[k]);  // Q1.14
    const acc_t f_g = sigmoid_q(pre_f[k]);
    const acc_t g_g = tanh_q(pre_g[k]);
    const acc_t o_g = sigmoid_q(pre_o[k]);

    // c' = f*c + i*g, with products rescaled back to Q4.12.
    const acc_t fc = (f_g * acc_t{state.c[k]}) >> kGateOutFracBits;
    const acc_t ig = (i_g * g_g) >> (2 * kGateOutFracBits - kGateInFracBits);
    const std::int16_t c_new = requantize(fc + ig, 0);
    state.c[k] = c_new;

    // h' = o * tanh(c'), rescaled to Q4.12.
    const acc_t th = tanh_q(c_new);  // Q1.14
    state.h[k] = requantize(
        (o_g * th) >> (2 * kGateOutFracBits - kGateInFracBits), 0);
  }
}

}  // namespace ftdl::host
