#include "host/lstm_runner.h"

#include "common/error.h"
#include "common/rng.h"

namespace ftdl::host {

namespace {

/// Exact gate matmul: acc[n] = sum_m W[n][m] * v[m], requantized by shift.
nn::Tensor16 gate_matmul(const nn::Tensor16& w, const nn::Tensor16& x,
                         const nn::Tensor16& h, int shift) {
  const int n_dim = w.dims()[0];
  const int m_dim = w.dims()[1];
  FTDL_ASSERT(x.size() + h.size() == m_dim);
  nn::Tensor16 out({n_dim});
  for (int n = 0; n < n_dim; ++n) {
    acc_t acc = 0;
    for (std::int64_t m = 0; m < x.size(); ++m) {
      acc = macc(acc, w.at(n, static_cast<int>(m)), x[m]);
    }
    for (std::int64_t m = 0; m < h.size(); ++m) {
      acc = macc(acc, w.at(n, static_cast<int>(x.size() + m)), h[m]);
    }
    out[n] = requantize(saturate48(acc), shift);
  }
  return out;
}

}  // namespace

LstmWeights LstmWeights::random_for(const LstmSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  LstmWeights w;
  const std::vector<int> dims = {spec.hidden_size,
                                 spec.input_size + spec.hidden_size};
  for (nn::Tensor16* t : {&w.w_i, &w.w_f, &w.w_g, &w.w_o}) {
    *t = nn::Tensor16(dims);
    t->fill_random(rng, 15);
  }
  return w;
}

std::vector<nn::Tensor16> run_lstm_sequence(
    const LstmSpec& spec, const LstmWeights& weights,
    const std::vector<nn::Tensor16>& inputs) {
  if (spec.input_size <= 0 || spec.hidden_size <= 0)
    throw ConfigError("LSTM sizes must be positive");
  for (const nn::Tensor16* t :
       {&weights.w_i, &weights.w_f, &weights.w_g, &weights.w_o}) {
    if (t->dims() !=
        std::vector<int>{spec.hidden_size, spec.input_size + spec.hidden_size})
      throw ConfigError("LSTM weight shape mismatch");
  }

  LstmCellState state{nn::Tensor16({spec.hidden_size}),
                      nn::Tensor16({spec.hidden_size})};
  std::vector<nn::Tensor16> outputs;
  outputs.reserve(inputs.size());

  for (const nn::Tensor16& x : inputs) {
    if (x.dims() != std::vector<int>{spec.input_size})
      throw ConfigError("LSTM input vector shape mismatch");
    const int s = spec.pre_activation_shift;
    const nn::Tensor16 pre_i = gate_matmul(weights.w_i, x, state.h, s);
    const nn::Tensor16 pre_f = gate_matmul(weights.w_f, x, state.h, s);
    const nn::Tensor16 pre_g = gate_matmul(weights.w_g, x, state.h, s);
    const nn::Tensor16 pre_o = gate_matmul(weights.w_o, x, state.h, s);
    lstm_cell_update(pre_i, pre_f, pre_g, pre_o, state);
    outputs.push_back(state.h);
  }
  return outputs;
}

}  // namespace ftdl::host
