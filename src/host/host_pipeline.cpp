#include "host/host_pipeline.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "obs/obs.h"

namespace ftdl::host {

namespace {

/// Total host EWOP ops of the network (pool/ewop layers + fused ReLUs).
std::int64_t total_ewop_ops(const nn::Network& net) {
  std::int64_t ops = 0;
  for (const nn::Layer& l : net.layers()) ops += l.ewop_ops();
  return ops;
}

}  // namespace

PipelineReport evaluate_pipeline(const nn::Network& net,
                                 const compiler::NetworkSchedule& schedule,
                                 const HostModel& host) {
  FTDL_ASSERT(host.ewop_ops_per_sec > 0);

  PipelineReport r;
  r.overlay_seconds = schedule.seconds_per_frame();
  r.host_seconds = double(total_ewop_ops(net)) / host.ewop_ops_per_sec;
  r.frame_seconds = std::max(r.overlay_seconds, r.host_seconds);
  // A host-only network (empty overlay schedule) has overlay_seconds == 0;
  // dividing through would make the ratio inf (or NaN when the host side is
  // empty too). Defined values (host_pipeline.h): +inf when host work exists
  // with no overlay stage to hide behind, 0 when the network is empty.
  if (r.overlay_seconds > 0.0) {
    r.host_over_overlay = r.host_seconds / r.overlay_seconds;
  } else {
    r.host_over_overlay = r.host_seconds > 0.0
                              ? std::numeric_limits<double>::infinity()
                              : 0.0;
  }
  r.ewop_bounds_throughput = r.host_seconds > r.overlay_seconds;

  // Worst per-stage imbalance: host work attached to overlay layer i (its
  // fused ReLU plus following host layers until the next overlay layer) vs
  // that overlay layer's time.
  const double clk = schedule.config.clocks.clk_h_hz;
  std::size_t prog_idx = 0;
  double stage_host_ops = 0.0;
  double stage_overlay_s = 0.0;
  double worst = 0.0;
  auto close_stage = [&] {
    if (stage_overlay_s > 0.0) {
      worst = std::max(
          worst, (stage_host_ops / host.ewop_ops_per_sec) / stage_overlay_s);
    }
    stage_host_ops = 0.0;
    stage_overlay_s = 0.0;
  };
  for (const nn::Layer& l : net.layers()) {
    if (l.on_overlay()) {
      close_stage();
      FTDL_ASSERT(prog_idx < schedule.layers.size());
      stage_overlay_s =
          double(schedule.layers[prog_idx].total_cycles()) * l.repeat / clk;
      ++prog_idx;
    }
    stage_host_ops += double(l.ewop_ops());
  }
  close_stage();
  r.worst_stage_ratio = worst;

  if (obs::enabled()) {
    obs::count("host/pipeline_evals");
    obs::gauge("host/overlay_seconds", r.overlay_seconds);
    obs::gauge("host/host_seconds", r.host_seconds);
    obs::gauge("host/frame_seconds", r.frame_seconds);
    // Steady-state occupancy of the overlay->host hand-off queue: the
    // fraction of a frame slot the host stage is busy (1.0 = host-bound).
    // Guarded for the empty network (frame_seconds == 0): an idle pipeline
    // has an empty queue, and gauges must stay finite for the JSON export.
    obs::gauge("host/queue_occupancy",
               r.frame_seconds > 0.0 ? r.host_seconds / r.frame_seconds : 0.0);
    obs::gauge("host/worst_stage_ratio", r.worst_stage_ratio);
  }
  return r;
}

double required_host_ops_per_sec(const nn::Network& net,
                                 const compiler::NetworkSchedule& schedule) {
  return double(total_ewop_ops(net)) / schedule.seconds_per_frame();
}

}  // namespace ftdl::host
