// Quantized LSTM sequence execution.
//
// The overlay computes the gate matrices (MM workloads, Table I's seqLSTM);
// the host applies the cell nonlinearities (ewop_kernels.h). This runner
// executes a whole sequence the way the deployed system would: per step,
// four W[H][I+H] x [x_t ; h_{t-1}] products in exact int16/wide arithmetic,
// requantized to Q4.12 gate pre-activations, then the LUT-based cell update.
#pragma once

#include <vector>

#include "host/ewop_kernels.h"
#include "nn/tensor.h"

namespace ftdl::host {

struct LstmSpec {
  int input_size = 0;
  int hidden_size = 0;
  /// Right-shift applied to the gate matmul accumulators to land in Q4.12.
  int pre_activation_shift = 8;
};

/// Gate weights, reference MM layout W[N][M] with N = hidden, M = input +
/// hidden (x first, then h).
struct LstmWeights {
  nn::Tensor16 w_i, w_f, w_g, w_o;

  /// Deterministic random weights for a spec.
  static LstmWeights random_for(const LstmSpec& spec, std::uint64_t seed);
};

/// Runs `inputs` (one {input_size} vector per step, Q4.12) through the cell;
/// returns h_t per step (Q4.12). State starts at zero. Throws
/// ftdl::ConfigError on shape mismatches.
std::vector<nn::Tensor16> run_lstm_sequence(const LstmSpec& spec,
                                            const LstmWeights& weights,
                                            const std::vector<nn::Tensor16>& inputs);

}  // namespace ftdl::host
