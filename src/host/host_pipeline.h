// Host-CPU EWOP pipeline model (Sec. V-A: "the EWOP layers were allocated
// to host CPU, and the performance was not bounded by these layers").
//
// The overlay and the host process consecutive layers in a pipeline: while
// the overlay computes CONV/MM of layer i, the host applies layer i-1's
// activations / pooling / residual work. Throughput is bounded by the
// slower stage. This model checks — rather than assumes — the paper's
// claim, and finds the host speed at which it would break.
#pragma once

#include "compiler/scheduler.h"

namespace ftdl::host {

struct HostModel {
  /// Sustained element-wise throughput of the host CPU (ops/s). A modest
  /// 4-core CPU with 128-bit SIMD on int16 sustains tens of Gops/s.
  double ewop_ops_per_sec = 20e9;
};

struct PipelineReport {
  double overlay_seconds = 0.0;   ///< per frame, all CONV/MM
  double host_seconds = 0.0;      ///< per frame, all EWOP
  /// Pipelined frame time: max of the two stages (steady state).
  double frame_seconds = 0.0;
  bool ewop_bounds_throughput = false;
  /// Host/overlay time ratio; < 1 means the paper's claim holds. For a
  /// host-only network (overlay_seconds == 0) the ratio is defined as +inf
  /// when host work exists — the pipeline is trivially host-bound — and 0.0
  /// when the network has no work at all; it is never NaN. The
  /// `host/queue_occupancy` gauge stays finite in both cases (0.0 for the
  /// empty network, 1.0 when host-bound).
  double host_over_overlay = 0.0;
  /// Slowest single host stage vs the matching overlay stage (worst-case
  /// per-layer imbalance within the pipeline).
  double worst_stage_ratio = 0.0;
};

/// Evaluates a scheduled network against a host model.
PipelineReport evaluate_pipeline(const nn::Network& net,
                                 const compiler::NetworkSchedule& schedule,
                                 const HostModel& host);

/// The minimum host throughput (ops/s) at which EWOP stops bounding the
/// frame rate for this schedule.
double required_host_ops_per_sec(const nn::Network& net,
                                 const compiler::NetworkSchedule& schedule);

}  // namespace ftdl::host
