// Functional end-to-end network execution.
//
// Runs a whole feed-forward network on int16 data: CONV/MM layers execute
// either through the scalar reference (fast path) or through the compiled
// cycle-level overlay simulator (exact hardware path, including weight-group
// splitting); pooling / concat / residual EWOP run as host-side kernels.
// Between layers, wide accumulators are requantized back to int16 with a
// per-layer shift chosen by a simple max-abs calibration — the host EWOP
// stage of Sec. V-A.
//
// Recurrent networks (seqLSTM) are not executable feed-forward and are
// rejected with ConfigError.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/overlay_config.h"
#include "common/arena.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "runtime/weight_store.h"

namespace ftdl::runtime {

enum class OverlayPath {
  Reference,  ///< scalar reference executor (fast, same arithmetic)
  CycleSim,   ///< compiled instruction streams on the cycle-level simulator
};

struct ExecOptions {
  OverlayPath path = OverlayPath::Reference;
  /// Overlay used by the CycleSim path (keep it small for speed).
  arch::OverlayConfig config;
  std::int64_t search_budget_per_layer = 8'000;
  /// Headroom bits kept when calibrating the requantization shift: outputs
  /// are scaled into roughly +-2^(7) so the next layer's accumulators
  /// cannot overflow 48 bits.
  int target_magnitude_bits = 7;
  /// Worker parallelism of each CycleSim functional burst, forwarded to
  /// sim::SimOptions::jobs (0 = the shared CompilerSession pool, 1 = serial,
  /// N > 1 = a dedicated pool). Outputs are bit-identical at every value.
  int sim_jobs = 0;
  /// Record a LayerRun per layer into ExecResult::runs. The serving runtime
  /// turns this off: the per-layer name strings would be the last heap
  /// allocations on its steady-state path. total_sim_cycles and the output
  /// are unaffected.
  bool collect_runs = true;
};

struct LayerRun {
  std::string name;
  nn::LayerKind kind{};
  int requant_shift = 0;      ///< 0 for host layers
  std::int64_t sim_cycles = 0;  ///< CycleSim path only
  int weight_groups = 1;
};

struct ExecResult {
  nn::Tensor16 output;          ///< final layer's tensor
  std::vector<LayerRun> runs;   ///< per-layer record, execution order
  std::int64_t total_sim_cycles = 0;
};

/// Requantization shift calibration (the host EWOP stage between layers):
/// the smallest right shift s >= 0 such that the maximum absolute
/// accumulator value, shifted by s, is <= 2^target_bits. Overflow-safe over
/// the full acc_t range, including the most-negative value (whose magnitude
/// 2^63 is not representable in acc_t). Exact boundary contract, pinned by
/// tests/test_runtime.cpp:
///   maxabs <= 2^target_bits      -> 0
///   maxabs == 2^target_bits + 1  -> 1
///   maxabs == 2^(target_bits+1)  -> 1
int calibrate_shift(const nn::AccTensor& acc, int target_bits);

/// Reusable execution context for repeated inference over one network — the
/// steady-state engine behind run_network and serve::Server.
///
/// Construction is the warm-up: the graph is validated, the sink and
/// per-layer dataflow inputs are resolved, weights are looked up, and (on
/// the CycleSim path) every layer is compiled, its weight-group slices
/// materialized once (weight-tile reuse across requests) and wrapped in a
/// sim::CachedLayerSim. run() then re-executes the network with all tensor
/// storage drawn from an owned TensorArena, so a warm context performs zero
/// heap allocations per request on the CycleSim path with collect_runs off
/// and observability disabled (pinned by the allocation-counter test in
/// tests/test_serve.cpp).
///
/// `net` and `weights` must outlive the context and not be mutated while it
/// exists. A context is not thread-safe; create one per worker thread.
class ExecContext {
 public:
  /// Warm-up. Throws the same ftdl::ConfigError / ftdl::Error diagnostics
  /// run_network would (empty network, ambiguous sinks, recurrent layers,
  /// missing weights, compile failures).
  ExecContext(const nn::Network& net, const WeightStore& weights,
              const ExecOptions& options);
  ~ExecContext();
  ExecContext(ExecContext&&) noexcept;
  ExecContext& operator=(ExecContext&&) noexcept;

  /// Executes the network. Bit-identical to run_network with the same
  /// options on every call.
  ExecResult run(const nn::Tensor16& input);

  /// Counters of the owned tensor arena (serve publishes these as
  /// runtime/arena_* observability counters).
  ArenaStats arena_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Executes `net` on `input` (dims {C,H,W} for vision nets, {M,P} when the
/// first layer is MM). The network output is the graph's unique sink layer
/// (resolved from the dataflow edges, not declaration order); graphs with
/// several sinks (multi-output heads) are rejected with ftdl::ConfigError
/// naming the sinks. Throws ftdl::ConfigError on graph/shape problems.
/// One-shot convenience over ExecContext: constructs a context and runs it
/// once.
ExecResult run_network(const nn::Network& net, const nn::Tensor16& input,
                       const WeightStore& weights, const ExecOptions& options);

}  // namespace ftdl::runtime
