// Functional end-to-end network execution.
//
// Runs a whole feed-forward network on int16 data: CONV/MM layers execute
// either through the scalar reference (fast path) or through the compiled
// cycle-level overlay simulator (exact hardware path, including weight-group
// splitting); pooling / concat / residual EWOP run as host-side kernels.
// Between layers, wide accumulators are requantized back to int16 with a
// per-layer shift chosen by a simple max-abs calibration — the host EWOP
// stage of Sec. V-A.
//
// Recurrent networks (seqLSTM) are not executable feed-forward and are
// rejected with ConfigError.
#pragma once

#include <string>
#include <vector>

#include "arch/overlay_config.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "runtime/weight_store.h"

namespace ftdl::runtime {

enum class OverlayPath {
  Reference,  ///< scalar reference executor (fast, same arithmetic)
  CycleSim,   ///< compiled instruction streams on the cycle-level simulator
};

struct ExecOptions {
  OverlayPath path = OverlayPath::Reference;
  /// Overlay used by the CycleSim path (keep it small for speed).
  arch::OverlayConfig config;
  std::int64_t search_budget_per_layer = 8'000;
  /// Headroom bits kept when calibrating the requantization shift: outputs
  /// are scaled into roughly +-2^(7) so the next layer's accumulators
  /// cannot overflow 48 bits.
  int target_magnitude_bits = 7;
  /// Worker parallelism of each CycleSim functional burst, forwarded to
  /// sim::SimOptions::jobs (0 = the shared CompilerSession pool, 1 = serial,
  /// N > 1 = a transient pool). Outputs are bit-identical at every value.
  int sim_jobs = 0;
};

struct LayerRun {
  std::string name;
  nn::LayerKind kind{};
  int requant_shift = 0;      ///< 0 for host layers
  std::int64_t sim_cycles = 0;  ///< CycleSim path only
  int weight_groups = 1;
};

struct ExecResult {
  nn::Tensor16 output;          ///< final layer's tensor
  std::vector<LayerRun> runs;   ///< per-layer record, execution order
  std::int64_t total_sim_cycles = 0;
};

/// Requantization shift calibration (the host EWOP stage between layers):
/// the smallest right shift s >= 0 such that the maximum absolute
/// accumulator value, shifted by s, is <= 2^target_bits. Overflow-safe over
/// the full acc_t range, including the most-negative value (whose magnitude
/// 2^63 is not representable in acc_t). Exact boundary contract, pinned by
/// tests/test_runtime.cpp:
///   maxabs <= 2^target_bits      -> 0
///   maxabs == 2^target_bits + 1  -> 1
///   maxabs == 2^(target_bits+1)  -> 1
int calibrate_shift(const nn::AccTensor& acc, int target_bits);

/// Executes `net` on `input` (dims {C,H,W} for vision nets, {M,P} when the
/// first layer is MM). The network output is the graph's unique sink layer
/// (resolved from the dataflow edges, not declaration order); graphs with
/// several sinks (multi-output heads) are rejected with ftdl::ConfigError
/// naming the sinks. Throws ftdl::ConfigError on graph/shape problems.
ExecResult run_network(const nn::Network& net, const nn::Tensor16& input,
                       const WeightStore& weights, const ExecOptions& options);

}  // namespace ftdl::runtime
