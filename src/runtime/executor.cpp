#include "runtime/executor.h"

#include <algorithm>
#include <bit>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "compiler/session.h"
#include "nn/reference.h"
#include "obs/obs.h"
#include "sim/ftdl_sim.h"

namespace ftdl::runtime {

namespace {

using nn::AccTensor;
using nn::Layer;
using nn::LayerKind;
using nn::Tensor16;

}  // namespace

int calibrate_shift(const AccTensor& acc, int target_bits) {
  // Magnitudes in uint64: std::abs on the most-negative acc_t is UB, and
  // its magnitude (2^63) does not fit in acc_t anyway.
  std::uint64_t maxabs = 0;
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    const acc_t v = acc[i];
    const std::uint64_t mag = v < 0 ? 0ULL - static_cast<std::uint64_t>(v)
                                    : static_cast<std::uint64_t>(v);
    maxabs = std::max(maxabs, mag);
  }
  const std::uint64_t target = std::uint64_t{1} << target_bits;
  if (maxabs <= target) return 0;
  // Smallest shift with (maxabs >> shift) <= 2^target_bits: take the top
  // set bit down to position target_bits, then round the sub-bit remainder
  // up (bit_width - 1 alone leaves values up to 2^(target_bits+1) - 1 —
  // the historical off-by-one this function is pinned against).
  int shift = std::bit_width(maxabs) - 1 - target_bits;
  if ((maxabs >> shift) > target) ++shift;
  return shift;
}

namespace {

/// Reshapes {C,H,W} to the {M,1} column a MM layer consumes.
Tensor16 flatten_for_mm(const Tensor16& t, const Layer& layer) {
  if (t.dims().size() == 2) return t;
  if (t.size() != layer.mm_m * layer.mm_p)
    throw ConfigError(layer.name + ": input element count mismatches MM shape");
  Tensor16 flat({static_cast<int>(layer.mm_m), static_cast<int>(layer.mm_p)});
  for (std::int64_t i = 0; i < t.size(); ++i) flat[i] = t[i];
  return flat;
}

/// A weight-group slice of a conv/MM layer and its weights.
struct GroupSlice {
  Layer layer;
  Tensor16 weights;
  int offset = 0;  ///< first output channel / feature of this group
};

std::vector<GroupSlice> slice_groups(const Layer& layer, const Tensor16& w,
                                     int groups) {
  std::vector<GroupSlice> out;
  const int total = layer.kind == LayerKind::Conv   ? layer.out_c
                    : layer.kind == LayerKind::Depthwise
                        ? layer.in_c
                        : static_cast<int>(layer.mm_n);
  const int gsz = static_cast<int>(ceil_div(total, groups));
  for (int off = 0; off < total; off += gsz) {
    GroupSlice gs;
    gs.offset = off;
    const int n = std::min(gsz, total - off);
    gs.layer = layer;
    if (layer.kind == LayerKind::Conv) {
      gs.layer.out_c = n;
      gs.weights = Tensor16({n, layer.in_c, layer.kh, layer.kw});
      for (int o = 0; o < n; ++o)
        for (int i = 0; i < layer.in_c; ++i)
          for (int r = 0; r < layer.kh; ++r)
            for (int s = 0; s < layer.kw; ++s)
              gs.weights.at(o, i, r, s) = w.at(off + o, i, r, s);
    } else if (layer.kind == LayerKind::Depthwise) {
      gs.layer.in_c = n;
      gs.layer.out_c = n;
      gs.weights = Tensor16({n, layer.kh, layer.kw});
      for (int o = 0; o < n; ++o)
        for (int r = 0; r < layer.kh; ++r)
          for (int s = 0; s < layer.kw; ++s)
            gs.weights.at(o, r, s) = w.at(off + o, r, s);
    } else {
      gs.layer.mm_n = n;
      gs.weights = Tensor16({n, static_cast<int>(layer.mm_m)});
      for (int o = 0; o < n; ++o)
        for (int m = 0; m < static_cast<int>(layer.mm_m); ++m)
          gs.weights.at(o, m) = w.at(off + o, m);
    }
    out.push_back(std::move(gs));
  }
  return out;
}

/// Host-kernel layers (pool/concat/ewop): their wall time is covered by the
/// per-layer runtime span; these counters attribute the EWOP op volume.
void note_host_kernel(const Layer& layer) {
  if (!obs::enabled()) return;
  obs::count("host/ewop_kernel_invocations");
  obs::count("host/ewop_ops", layer.ewop_ops());
}

}  // namespace

/// All state the context reuses across run() calls. Warm-up happens in the
/// constructor; run() touches only the caches and the arena.
struct ExecContext::Impl {
  /// One weight-group slice with its sliced weights, cached runner and a
  /// persistent output slot (reshaped once, then zero-filled in place).
  struct Group {
    Layer layer;
    Tensor16 weights;  ///< sliced once at warm-up — weight-tile reuse
    int offset = 0;
    std::optional<sim::CachedLayerSim> sim;
    AccTensor out;
  };

  struct LayerCtx {
    const Layer* layer = nullptr;
    std::vector<std::string> inputs;       ///< resolved dataflow inputs
    const Tensor16* weights = nullptr;     ///< overlay layers only
    int weight_groups = 1;
    std::vector<Group> groups;             ///< CycleSim overlay layers only
  };

  const nn::Network& net;
  const WeightStore& wstore;
  const ExecOptions opt;
  TensorArena arena;
  std::unique_ptr<ThreadPool> own_pool;  ///< sim_jobs > 1: one pool, reused
  std::string sink;
  const std::string input_key{nn::kNetworkInput};
  std::vector<LayerCtx> layers;
  /// Persistent name -> tensor map: keys are inserted during warm-up and
  /// overwritten (move-assigned) on later runs, so steady-state execution
  /// never allocates map nodes or key strings.
  std::unordered_map<std::string, Tensor16> tensors;

  Impl(const nn::Network& n, const WeightStore& w, const ExecOptions& o)
      : net(n), wstore(w), opt(o) {
    net.validate_graph();
    if (net.layers().empty())
      throw ConfigError(net.name() + ": cannot execute an empty network");
    // Resolve the true output before running anything: the last-declared
    // layer is always *a* sink, but branching graphs can leave several
    // layers unconsumed (multi-output heads) and silently returning one of
    // them would drop the rest.
    const std::vector<std::string> sinks = net.sink_names();
    if (sinks.size() != 1) {
      std::string names;
      for (const std::string& s : sinks) {
        if (!names.empty()) names += ", ";
        names += s;
      }
      throw ConfigError(net.name() +
                        ": ambiguous network output — feed-forward execution "
                        "needs exactly one sink layer, found " +
                        std::to_string(sinks.size()) + " (" + names + ")");
    }
    sink = sinks.front();
    if (opt.sim_jobs > 1) own_pool = std::make_unique<ThreadPool>(opt.sim_jobs);

    layers.reserve(net.layers().size());
    for (std::size_t i = 0; i < net.layers().size(); ++i) {
      const Layer& layer = net.layers()[i];
      if (layer.repeat != 1)
        throw ConfigError(layer.name +
                          ": recurrent (repeat>1) layers are not executable "
                          "feed-forward");
      LayerCtx lc;
      lc.layer = &layer;
      lc.inputs = net.resolved_inputs(i);
      if (layer.kind == LayerKind::Conv || layer.kind == LayerKind::Depthwise ||
          layer.kind == LayerKind::MatMul) {
        lc.weights = &wstore.get(layer);
        if (opt.path == OverlayPath::CycleSim) warm_overlay(lc);
      }
      layers.push_back(std::move(lc));
    }
  }

  /// CycleSim warm-up for one overlay layer: compile through the shared
  /// session (repeated shapes reuse one search), slice the weight groups
  /// once, and build a cached runner per group.
  void warm_overlay(LayerCtx& lc) {
    const Layer& layer = *lc.layer;
    compiler::CompilerSession& session = compiler::CompilerSession::global();
    const compiler::LayerProgram master = session.compile(
        layer, opt.config, compiler::Objective::Performance,
        opt.search_budget_per_layer);
    lc.weight_groups = master.weight_groups;
    for (GroupSlice& gs : slice_groups(layer, *lc.weights,
                                       master.weight_groups)) {
      const compiler::LayerProgram prog = session.compile(
          gs.layer, opt.config, compiler::Objective::Performance,
          opt.search_budget_per_layer);
      Group g;
      g.layer = std::move(gs.layer);
      g.weights = std::move(gs.weights);
      g.offset = gs.offset;
      // The context only consumes output accumulators and cycle counts;
      // never collect a DRAM trace.
      sim::SimOptions sim_opt;
      sim_opt.collect_trace = false;
      g.sim.emplace(prog, opt.config, sim_opt);
      lc.groups.push_back(std::move(g));
    }
  }

  ThreadPool* pool() {
    if (opt.sim_jobs == 1) return nullptr;
    if (opt.sim_jobs == 0) return &compiler::CompilerSession::global().pool();
    return own_pool.get();
  }

  const Tensor16& tensor(const std::string& name) const {
    auto it = tensors.find(name);
    if (it == tensors.end())
      throw ConfigError("no tensor produced for " + name);
    return it->second;
  }

  ExecResult run(const Tensor16& input) {
    // Every tensor built below draws from the pool for the rest of the call
    // (and frees back into it, even from tensors that escape in the result).
    TensorArena::Scope scope(arena);
    tensors[input_key] = input;

    ExecResult result;
    for (LayerCtx& lc : layers) {
      const Layer& layer = *lc.layer;
      LayerRun run;
      run.kind = layer.kind;
      if (opt.collect_runs) run.name = layer.name;
      Tensor16 out;
      if (obs::enabled()) {
        obs::ScopedSpan span("runtime", "execute_layer",
                             {{"layer", layer.name},
                              {"kind", nn::to_string(layer.kind)}});
        out = execute_layer(lc, run);
        if (run.sim_cycles > 0)
          span.add_arg("cycles", std::to_string(run.sim_cycles));
        obs::count("runtime/layers_executed");
        if (run.sim_cycles > 0) obs::count("runtime/sim_cycles", run.sim_cycles);
      } else {
        out = execute_layer(lc, run);
      }
      result.total_sim_cycles += run.sim_cycles;
      if (opt.collect_runs) result.runs.push_back(std::move(run));
      tensors[layer.name] = std::move(out);
    }
    result.output = tensors.at(sink);
    return result;
  }

  Tensor16 execute_layer(LayerCtx& lc, LayerRun& run) {
    const Layer& layer = *lc.layer;
    switch (layer.kind) {
      case LayerKind::Conv:
      case LayerKind::Depthwise:
      case LayerKind::MatMul:
        return execute_overlay(lc, tensor(lc.inputs.at(0)), run);
      case LayerKind::Pool: {
        note_host_kernel(layer);
        const Tensor16& in = tensor(lc.inputs.at(0));
        return layer.pool_op == nn::PoolOp::Max
                   ? nn::maxpool_reference(layer, in)
                   : nn::avgpool_reference(layer, in);
      }
      case LayerKind::Concat:
        note_host_kernel(layer);
        return concat(layer, lc.inputs);
      case LayerKind::Ewop:
        note_host_kernel(layer);
        return ewop(layer, lc.inputs);
    }
    throw InternalError("unhandled layer kind");
  }

  Tensor16 execute_overlay(LayerCtx& lc, const Tensor16& input,
                           LayerRun& run) {
    const Layer& layer = *lc.layer;
    const Tensor16& w = *lc.weights;
    if ((layer.kind == LayerKind::Conv || layer.kind == LayerKind::Depthwise) &&
        input.dims() != nn::Dims{layer.in_c, layer.in_h, layer.in_w}) {
      throw ConfigError(layer.name + ": input tensor shape mismatch");
    }
    const Tensor16* act = &input;
    Tensor16 flat;
    if (layer.kind == LayerKind::MatMul && input.dims().size() != 2) {
      flat = flatten_for_mm(input, layer);
      act = &flat;
    }

    AccTensor acc;
    if (opt.path == OverlayPath::Reference) {
      switch (layer.kind) {
        case LayerKind::Conv:
          acc = nn::conv2d_reference(layer, *act, w);
          break;
        case LayerKind::Depthwise:
          acc = nn::depthwise_reference(layer, *act, w);
          break;
        default:
          acc = nn::matmul_reference(layer, *act, w);
      }
    } else {
      acc = simulate(lc, *act, run);
    }

    run.requant_shift = calibrate_shift(acc, opt.target_magnitude_bits);
    return nn::requantize_output(layer, acc, run.requant_shift);
  }

  /// Cycle-level path over the warm caches: run each group's cached runner
  /// and stitch the output slices.
  AccTensor simulate(LayerCtx& lc, const Tensor16& act, LayerRun& run) {
    const Layer& layer = *lc.layer;
    run.weight_groups = lc.weight_groups;

    AccTensor acc = layer.kind == LayerKind::MatMul
                        ? AccTensor({static_cast<int>(layer.mm_n),
                                     static_cast<int>(layer.mm_p)})
                        : AccTensor({layer.out_c, layer.out_h(), layer.out_w()});

    for (Group& g : lc.groups) {
      // Depthwise groups split the channel dimension of the *activations*
      // too; slice the input accordingly.
      const Tensor16* group_act = &act;
      Tensor16 act_slice;
      if (layer.kind == LayerKind::Depthwise && lc.weight_groups > 1) {
        act_slice = Tensor16({g.layer.in_c, layer.in_h, layer.in_w});
        for (int c = 0; c < g.layer.in_c; ++c)
          for (int y = 0; y < layer.in_h; ++y)
            for (int x = 0; x < layer.in_w; ++x)
              act_slice.at(c, y, x) = act.at(g.offset + c, y, x);
        group_act = &act_slice;
      }
      g.sim->run(g.weights, *group_act, g.out, pool());
      run.sim_cycles += g.sim->stats().cycles;
      // Stitch the group's output slice into the full tensor.
      if (layer.kind == LayerKind::MatMul) {
        for (int o = 0; o < static_cast<int>(g.layer.mm_n); ++o)
          for (int p = 0; p < static_cast<int>(layer.mm_p); ++p)
            acc.at(g.offset + o, p) = g.out.at(o, p);
      } else {
        const int oc = layer.kind == LayerKind::Depthwise ? g.layer.in_c
                                                          : g.layer.out_c;
        for (int o = 0; o < oc; ++o)
          for (int y = 0; y < layer.out_h(); ++y)
            for (int x = 0; x < layer.out_w(); ++x)
              acc.at(g.offset + o, y, x) = g.out.at(o, y, x);
      }
    }
    return acc;
  }

  Tensor16 concat(const Layer& layer,
                  const std::vector<std::string>& inputs) const {
    int channels = 0;
    const Tensor16& first = tensor(inputs.front());
    if (first.dims().size() != 3)
      throw ConfigError(layer.name + ": concat expects CHW inputs");
    const int h = first.dims()[1], w = first.dims()[2];
    for (const std::string& in : inputs) {
      const Tensor16& t = tensor(in);
      if (t.dims().size() != 3 || t.dims()[1] != h || t.dims()[2] != w)
        throw ConfigError(layer.name + ": concat input shape mismatch at " + in);
      channels += t.dims()[0];
    }
    Tensor16 out({channels, h, w});
    int c0 = 0;
    for (const std::string& in : inputs) {
      const Tensor16& t = tensor(in);
      for (int c = 0; c < t.dims()[0]; ++c)
        for (int y = 0; y < h; ++y)
          for (int x = 0; x < w; ++x) out.at(c0 + c, y, x) = t.at(c, y, x);
      c0 += t.dims()[0];
    }
    return out;
  }

  Tensor16 ewop(const Layer& layer,
                const std::vector<std::string>& inputs) const {
    switch (layer.ewop_op) {
      case nn::EwopOp::Generic:
        // Op-count-only stage: identity over its (single) input.
        return tensor(inputs.at(0));
      case nn::EwopOp::AddRelu: {
        const Tensor16& a = tensor(inputs.at(0));
        const Tensor16& b = tensor(inputs.at(1));
        if (a.dims() != b.dims())
          throw ConfigError(layer.name + ": residual input shape mismatch");
        Tensor16 out(a.dims());
        for (std::int64_t i = 0; i < a.size(); ++i) {
          const acc_t sum = acc_t{a[i]} + acc_t{b[i]};
          out[i] = relu(requantize(sum, 0));
        }
        return out;
      }
    }
    throw InternalError("unhandled ewop op");
  }
};

ExecContext::ExecContext(const nn::Network& net, const WeightStore& weights,
                         const ExecOptions& options)
    : impl_(std::make_unique<Impl>(net, weights, options)) {}

ExecContext::~ExecContext() = default;
ExecContext::ExecContext(ExecContext&&) noexcept = default;
ExecContext& ExecContext::operator=(ExecContext&&) noexcept = default;

ExecResult ExecContext::run(const nn::Tensor16& input) {
  return impl_->run(input);
}

ArenaStats ExecContext::arena_stats() const { return impl_->arena.stats(); }

ExecResult run_network(const nn::Network& net, const Tensor16& input,
                       const WeightStore& weights, const ExecOptions& options) {
  ExecContext ctx(net, weights, options);
  return ctx.run(input);
}

}  // namespace ftdl::runtime
