#include "runtime/weight_store.h"

#include "common/error.h"
#include "common/rng.h"

namespace ftdl::runtime {

std::vector<int> weight_dims(const nn::Layer& layer) {
  switch (layer.kind) {
    case nn::LayerKind::Conv:
      return {layer.out_c, layer.in_c, layer.kh, layer.kw};
    case nn::LayerKind::Depthwise:
      return {layer.in_c, layer.kh, layer.kw};
    case nn::LayerKind::MatMul:
      return {static_cast<int>(layer.mm_n), static_cast<int>(layer.mm_m)};
    default:
      return {};
  }
}

WeightStore WeightStore::random_for(const nn::Network& net, std::uint64_t seed,
                                    std::int16_t magnitude) {
  WeightStore ws;
  Rng rng(seed);
  for (const nn::Layer& layer : net.layers()) {
    const std::vector<int> dims = weight_dims(layer);
    if (dims.empty()) continue;
    nn::Tensor16 w(dims);
    w.fill_random(rng, magnitude);
    ws.set(layer.name, std::move(w));
  }
  return ws;
}

void WeightStore::set(const std::string& layer_name, nn::Tensor16 weights) {
  store_[layer_name] = std::move(weights);
}

const nn::Tensor16& WeightStore::get(const nn::Layer& layer) const {
  auto it = store_.find(layer.name);
  if (it == store_.end())
    throw ConfigError("no weights stored for layer " + layer.name);
  if (it->second.dims() != weight_dims(layer))
    throw ConfigError("stored weight shape mismatches layer " + layer.name);
  return it->second;
}

std::int64_t WeightStore::total_words() const {
  std::int64_t n = 0;
  for (const auto& [name, t] : store_) n += t.size();
  return n;
}

}  // namespace ftdl::runtime
