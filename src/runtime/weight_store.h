// Per-layer weight storage for functional network execution.
#pragma once

#include <string>
#include <unordered_map>

#include "nn/network.h"
#include "nn/tensor.h"

namespace ftdl::runtime {

/// Holds one int16 weight tensor per weighted layer, in the reference
/// layouts (conv: {out_c, in_c, kh, kw}; MM: {N, M}).
class WeightStore {
 public:
  /// Deterministic random weights for every weighted layer of `net`.
  static WeightStore random_for(const nn::Network& net, std::uint64_t seed,
                                std::int16_t magnitude = 7);

  /// Adds or replaces the weights of `layer_name`.
  void set(const std::string& layer_name, nn::Tensor16 weights);

  /// Weights of `layer_name`; throws ftdl::ConfigError if absent or if the
  /// stored shape does not match `layer`.
  const nn::Tensor16& get(const nn::Layer& layer) const;

  bool contains(const std::string& layer_name) const {
    return store_.contains(layer_name);
  }

  std::size_t size() const { return store_.size(); }

  /// Total stored weight words.
  std::int64_t total_words() const;

 private:
  std::unordered_map<std::string, nn::Tensor16> store_;
};

/// Expected weight tensor dims for a layer (empty for weightless layers).
std::vector<int> weight_dims(const nn::Layer& layer);

}  // namespace ftdl::runtime
