// Winograd fast convolution F(2x2, 3x3) — the algorithm-level acceleration
// the paper's conclusion anticipates combining with FTDL (and the technique
// behind prior work [4], Lu et al. FCCM'17).
//
// A 3x3/stride-1 convolution becomes, per 2x2 output tile, 16 element-wise
// products between transformed 4x4 weight and input tiles, reduced over
// input channels — i.e. 16 independent MM workloads of [out_c x in_c] x
// [in_c x tiles] that FTDL schedules natively. The multiply count drops
// from 36·C to 16·C per tile (2.25x); the transforms are cheap adds that
// join the host EWOP class.
//
// Arithmetic is exact: the fractional G matrix is replaced by 2G (integer),
// making the transformed product 4x the true value, and the final 2x2
// output is divided by 4 — an exact integer division because the result is
// exactly 4x the direct convolution.
#pragma once

#include "compiler/scheduler.h"
#include "nn/layer.h"
#include "nn/tensor.h"

namespace ftdl::winograd {

/// True iff the layer admits F(2x2, 3x3): 3x3 kernel, stride 1.
bool is_winograd_eligible(const nn::Layer& layer);

/// Exact functional Winograd convolution; bit-identical to
/// nn::conv2d_reference for eligible layers. Throws ftdl::ConfigError for
/// ineligible layers or layout mismatches.
nn::AccTensor winograd_conv(const nn::Layer& layer, const nn::Tensor16& input,
                            const nn::Tensor16& weights);

/// The overlay-facing view: the 16 transformed-domain MM workloads plus the
/// host-side transform cost.
struct WinogradPlan {
  nn::Layer mm;                    ///< one of the 16 identical MM layers
  int num_mms = 16;                ///< one per transformed-tile position
  std::int64_t transform_ewop_ops = 0;  ///< input/output transform adds
  std::int64_t direct_macs = 0;    ///< MACs of the direct convolution
  std::int64_t winograd_macs = 0;  ///< MACs in the transformed domain

  double mac_reduction() const {
    return double(direct_macs) / double(winograd_macs);
  }
};

/// Builds the plan; throws ftdl::ConfigError for ineligible layers.
WinogradPlan plan_winograd(const nn::Layer& layer);

/// Schedules the layer both ways on `config` and returns the cycle counts
/// (direct, winograd incl. all 16 MMs). Winograd's MMs share one search.
struct WinogradComparison {
  std::int64_t direct_cycles = 0;
  std::int64_t winograd_cycles = 0;
  double speedup() const {
    return double(direct_cycles) / double(winograd_cycles);
  }
};
WinogradComparison compare_schedules(const nn::Layer& layer,
                                     const arch::OverlayConfig& config,
                                     std::int64_t max_candidates = 20'000);

}  // namespace ftdl::winograd
