#include "winograd/winograd.h"

#include "common/error.h"
#include "common/math_util.h"
#include "compiler/codegen.h"

namespace ftdl::winograd {

namespace {

// F(2x2, 3x3) transform matrices. G is fractional ([1,0,0; .5,.5,.5;
// .5,-.5,.5; 0,0,1]); we use 2G so every intermediate stays integral and
// the final result is exactly 4x the true convolution.
constexpr int kG2[4][3] = {{2, 0, 0}, {1, 1, 1}, {1, -1, 1}, {0, 0, 2}};
constexpr int kBt[4][4] = {{1, 0, -1, 0}, {0, 1, 1, 0}, {0, -1, 1, 0},
                           {0, 1, 0, -1}};
constexpr int kAt[2][4] = {{1, 1, 1, 0}, {0, 1, -1, -1}};

/// U' = (2G) g (2G)^T for one 3x3 kernel (4x the true U).
void transform_weight(const nn::Tensor16& w, int m, int n, acc_t u[4][4]) {
  acc_t tmp[4][3];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      acc_t s = 0;
      for (int k = 0; k < 3; ++k) s += acc_t{kG2[i][k]} * w.at(m, n, k, j);
      tmp[i][j] = s;
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      acc_t s = 0;
      for (int k = 0; k < 3; ++k) s += tmp[i][k] * kG2[j][k];
      u[i][j] = s;
    }
  }
}

/// V = B^T d B for one 4x4 input patch (zero-padded at the borders).
void transform_input(const nn::Tensor16& in, int n, int y0, int x0, int in_h,
                     int in_w, acc_t v[4][4]) {
  acc_t d[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const int y = y0 + i, x = x0 + j;
      d[i][j] = (y >= 0 && y < in_h && x >= 0 && x < in_w)
                    ? acc_t{in.at(n, y, x)}
                    : 0;
    }
  }
  acc_t tmp[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      acc_t s = 0;
      for (int k = 0; k < 4; ++k) s += acc_t{kBt[i][k]} * d[k][j];
      tmp[i][j] = s;
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      acc_t s = 0;
      for (int k = 0; k < 4; ++k) s += tmp[i][k] * kBt[j][k];
      v[i][j] = s;
    }
  }
}

void check_eligible(const nn::Layer& layer) {
  if (!is_winograd_eligible(layer))
    throw ConfigError(layer.name +
                      ": Winograd F(2x2,3x3) needs a 3x3 stride-1 CONV");
}

}  // namespace

bool is_winograd_eligible(const nn::Layer& layer) {
  return layer.kind == nn::LayerKind::Conv && layer.kh == 3 && layer.kw == 3 &&
         layer.stride == 1;
}

nn::AccTensor winograd_conv(const nn::Layer& layer, const nn::Tensor16& input,
                            const nn::Tensor16& weights) {
  check_eligible(layer);
  if (input.dims() != std::vector<int>{layer.in_c, layer.in_h, layer.in_w})
    throw ConfigError(layer.name + ": input tensor layout mismatch");
  if (weights.dims() !=
      std::vector<int>{layer.out_c, layer.in_c, 3, 3})
    throw ConfigError(layer.name + ": weight tensor layout mismatch");

  const int oh = layer.out_h(), ow = layer.out_w();
  nn::AccTensor out({layer.out_c, oh, ow});

  // Pre-transform all kernels once: U'[m][n] (4 x the true value).
  std::vector<acc_t> u_all(static_cast<std::size_t>(layer.out_c) *
                           layer.in_c * 16);
  for (int m = 0; m < layer.out_c; ++m) {
    for (int n = 0; n < layer.in_c; ++n) {
      acc_t u[4][4];
      transform_weight(weights, m, n, u);
      acc_t* dst =
          &u_all[(static_cast<std::size_t>(m) * layer.in_c + n) * 16];
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) dst[i * 4 + j] = u[i][j];
    }
  }

  for (int ty = 0; ty < oh; ty += 2) {
    for (int tx = 0; tx < ow; tx += 2) {
      // Input patch origin for this tile (accounting for padding).
      const int y0 = ty - layer.pad;
      const int x0 = tx - layer.pad;

      // V per input channel (shared across output channels).
      std::vector<acc_t> v_all(static_cast<std::size_t>(layer.in_c) * 16);
      for (int n = 0; n < layer.in_c; ++n) {
        acc_t v[4][4];
        transform_input(input, n, y0, x0, layer.in_h, layer.in_w, v);
        for (int i = 0; i < 4; ++i)
          for (int j = 0; j < 4; ++j)
            v_all[static_cast<std::size_t>(n) * 16 + i * 4 + j] = v[i][j];
      }

      for (int m = 0; m < layer.out_c; ++m) {
        // M' = sum_n U'(m,n) (.) V(n)  — 16 multiplies per channel.
        acc_t acc[16] = {};
        for (int n = 0; n < layer.in_c; ++n) {
          const acc_t* u =
              &u_all[(static_cast<std::size_t>(m) * layer.in_c + n) * 16];
          const acc_t* v = &v_all[static_cast<std::size_t>(n) * 16];
          for (int e = 0; e < 16; ++e) acc[e] += u[e] * v[e];
        }
        // Y' = A^T M' A; Y = Y' / 4 (exact).
        acc_t tmp[2][4];
        for (int i = 0; i < 2; ++i) {
          for (int j = 0; j < 4; ++j) {
            acc_t s = 0;
            for (int k = 0; k < 4; ++k) s += acc_t{kAt[i][k]} * acc[k * 4 + j];
            tmp[i][j] = s;
          }
        }
        for (int i = 0; i < 2; ++i) {
          for (int j = 0; j < 2; ++j) {
            if (ty + i >= oh || tx + j >= ow) continue;
            acc_t s = 0;
            for (int k = 0; k < 4; ++k) s += tmp[i][k] * kAt[j][k];
            FTDL_ASSERT(s % 4 == 0);
            out.at(m, ty + i, tx + j) = s / 4;
          }
        }
      }
    }
  }
  return out;
}

WinogradPlan plan_winograd(const nn::Layer& layer) {
  check_eligible(layer);
  const std::int64_t tiles = ceil_div(layer.out_h(), 2) * ceil_div(layer.out_w(), 2);

  WinogradPlan plan;
  // Each transformed-tile position e in [0,16) is an independent MM:
  // out_e[M][tiles] = U_e[M][C] x V_e[C][tiles].
  plan.mm = nn::make_matmul(layer.name + "/winograd_mm", layer.in_c,
                            layer.out_c, tiles);
  plan.num_mms = 16;
  plan.direct_macs = layer.macs();
  plan.winograd_macs = 16LL * layer.in_c * layer.out_c * tiles;
  // Transforms: B^T d B is 32 adds per 4x4 channel-tile; A^T M A is 24 adds
  // per output tile per channel (weight transforms are offline).
  plan.transform_ewop_ops =
      tiles * (32LL * layer.in_c + 24LL * layer.out_c);
  return plan;
}

WinogradComparison compare_schedules(const nn::Layer& layer,
                                     const arch::OverlayConfig& config,
                                     std::int64_t max_candidates) {
  const WinogradPlan plan = plan_winograd(layer);

  WinogradComparison cmp;
  cmp.direct_cycles = compiler::compile_layer(layer, config,
                                              compiler::Objective::Performance,
                                              max_candidates)
                          .total_cycles();
  // The 16 MMs are identical in shape: schedule once, run 16 times.
  cmp.winograd_cycles = 16 * compiler::compile_layer(
                                 plan.mm, config,
                                 compiler::Objective::Performance,
                                 max_candidates)
                                 .total_cycles();
  return cmp;
}

}  // namespace ftdl::winograd
