// Prior-work database and the Table II normalization.
//
// The paper compares against ten published designs using *their own*
// reported DSP frequency and hardware efficiency, normalized to the same
// DSP count as the example FTDL design:
//    FPS = 2 * Ndsp * f * eff / ops_per_frame.
// This module stores those published statistics and reproduces every
// prior-work column of Table II from them.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

namespace ftdl::baseline {

struct PriorWork {
  std::string key;            ///< citation key as printed in Table II
  std::string description;
  double dsp_freq_mhz = 0.0;
  double hardware_efficiency = 0.0;  ///< fraction in (0, 1]
  /// Published power efficiency where the paper lists one (GOPS/W).
  std::optional<double> power_eff_gops_per_w;
};

/// The ten prior works of Table II, in column order.
const std::vector<PriorWork>& table2_prior_works();

/// FPS at `dsp_count` DSPs for a model of `ops_per_frame` total ops
/// (the paper's normalization; 2 ops per MAC are already inside ops).
double normalized_fps(const PriorWork& work, int dsp_count,
                      double ops_per_frame);

/// Same normalization for an arbitrary (freq, efficiency) design point.
double normalized_fps(double dsp_freq_hz, double efficiency, int dsp_count,
                      double ops_per_frame);

}  // namespace ftdl::baseline
