#include "baseline/prior_work.h"

#include "common/error.h"

namespace ftdl::baseline {

const std::vector<PriorWork>& table2_prior_works() {
  // Columns of Table II (all 16-bit weight quantization).
  static const std::vector<PriorWork> works = {
      {"[10]", "Ma et al., end-to-end scalable ResNet (ISCAS'17)", 150, 0.454,
       std::nullopt},
      {"[2]", "Liu et al., throughput-optimized accelerator (TRETS'17)", 100,
       0.730, 16.8},
      {"[3]", "Venieris & Bouganis, latency-driven design (FPL'17)", 125,
       0.720, std::nullopt},
      {"[4]", "Lu et al., fast algorithms on FPGAs (FCCM'17)", 167, 0.675,
       21.4},
      {"[5]", "Ma et al., automatic RTL compiler (FPL'17)", 200, 0.483,
       std::nullopt},
      {"[7]", "Ma et al., convolution optimization (TVLSI'18)", 200, 0.482,
       std::nullopt},
      {"[8]", "Guan et al., FP-DNN (FCCM'17)", 150, 0.719, 14.5},
      {"[21]", "Ma et al., loop operation optimization (FPGA'17)", 150, 0.708,
       30.4},
      {"[1]", "Shen et al., resource partitioning (ISCA'17)", 170, 0.765,
       std::nullopt},
      {"[9]", "Wei et al., automated systolic array (DAC'17)", 240, 0.891,
       std::nullopt},
  };
  return works;
}

double normalized_fps(double dsp_freq_hz, double efficiency, int dsp_count,
                      double ops_per_frame) {
  FTDL_ASSERT(dsp_freq_hz > 0 && efficiency > 0 && dsp_count > 0 &&
              ops_per_frame > 0);
  // Each DSP retires one MAC = 2 ops per cycle at `efficiency` occupancy.
  return 2.0 * double(dsp_count) * dsp_freq_hz * efficiency / ops_per_frame;
}

double normalized_fps(const PriorWork& work, int dsp_count,
                      double ops_per_frame) {
  return normalized_fps(work.dsp_freq_mhz * 1e6, work.hardware_efficiency,
                        dsp_count, ops_per_frame);
}

}  // namespace ftdl::baseline
