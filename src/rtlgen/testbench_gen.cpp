#include "rtlgen/testbench_gen.h"

#include "common/error.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace ftdl::rtlgen {

namespace {

std::string hex_file_u64(const std::vector<std::uint64_t>& words) {
  std::string out;
  for (std::uint64_t w : words) {
    out += strformat("%016llx\n", static_cast<unsigned long long>(w));
  }
  return out;
}

std::string hex_file_u16(const std::vector<std::int16_t>& words) {
  std::string out;
  for (std::int16_t w : words) {
    out += strformat("%04x\n", static_cast<unsigned>(static_cast<std::uint16_t>(w)));
  }
  return out;
}

std::string tb_controller_v(const compiler::LayerProgram& program) {
  const auto& perf = program.perf;
  const long long expected_maccs =
      static_cast<long long>(perf.x) * perf.l * perf.t;
  return strformat(R"(// tb_ftdl_controller.v — generated self-checking bench.
// Streams the compiled layer's InstBUS words (insts.hex) and checks the
// controller executes the Listing-1 nest: exactly X*L*T = %lld MACC cycles.
`timescale 1ns/1ps
`include "ftdl_defines.vh"

module tb_ftdl_controller;

  reg clk_h = 1'b0;
  reg rst = 1'b1;
  always #0.769 clk_h = ~clk_h;  // ~650 MHz

  reg                     inst_valid = 1'b0;
  reg  [`FTDL_INST_W-1:0] inst_word = {`FTDL_INST_W{1'b0}};
  wire running, phase, macc_en, psum_we, psum_accumulate, done;
  wire [`FTDL_ACTBUF_AW-1:0] ra_a, ra_b;
  wire [`FTDL_WBUF_AW-1:0]   wr;
  wire [`FTDL_PSUM_AW-1:0]   pa;

  ftdl_controller dut (
    .clk_h(clk_h), .rst(rst),
    .inst_valid(inst_valid), .inst_word(inst_word),
    .running(running), .phase(phase), .macc_en(macc_en),
    .actbuf_raddr_a(ra_a), .actbuf_raddr_b(ra_b),
    .wbuf_raddr(wr), .psum_addr(pa), .psum_we(psum_we),
    .psum_accumulate(psum_accumulate), .done(done)
  );

  reg [`FTDL_INST_W-1:0] insts [0:%zu];
  integer i;
  integer macc_count = 0;

  always @(posedge clk_h) if (macc_en) macc_count = macc_count + 1;

  initial begin
    $readmemh("insts.hex", insts);
    repeat (4) @(posedge clk_h);
    rst = 1'b0;
    for (i = 0; i < %zu; i = i + 1) begin
      @(posedge clk_h);
      inst_valid = 1'b1;
      inst_word = insts[i];
    end
    @(posedge clk_h);
    inst_valid = 1'b0;
    wait (done);
    repeat (4) @(posedge clk_h);
    if (macc_count == %lld) begin
      $display("PASS: controller issued %%0d MACC cycles", macc_count);
    end else begin
      $display("FAIL: expected %lld MACC cycles, got %%0d", macc_count);
      $fatal(1);
    end
    $finish;
  end

endmodule
)",
                   expected_maccs, program.row_stream.size() - 1,
                   program.row_stream.size(), expected_maccs, expected_maccs);
}

std::string tb_tpe_v(int burst_len, long long golden) {
  return strformat(R"(// tb_ftdl_tpe.v — generated self-checking bench.
// Preloads %d weights (weights.hex) and %d activations (acts.hex), runs a
// double-pumped burst of %d MACCs through one TPE and compares the final
// 48-bit cascade accumulator against the precomputed golden value.
`timescale 1ns/1ps
`include "ftdl_defines.vh"

module tb_ftdl_tpe;

  reg clk_l = 1'b0;
  always #1.538 clk_l = ~clk_l;          // ~325 MHz
  reg clk_h = 1'b0;
  always #0.769 clk_h = ~clk_h;          // ~650 MHz, phase-aligned 2x
  reg rst = 1'b1;

  reg                        wbuf_we = 1'b0;
  reg  [`FTDL_WBUF_AW-1:0]   wbuf_waddr = 0;
  reg  [`FTDL_DATA_W-1:0]    wbuf_wdata = 0;
  reg  [`FTDL_WBUF_AW-1:0]   wbuf_raddr = 0;
  reg                        actbuf_we = 1'b0;
  reg  [`FTDL_ACTBUF_AW-1:0] actbuf_waddr = 0;
  reg  [`FTDL_DATA_W-1:0]    actbuf_wdata = 0;
  reg  [`FTDL_ACTBUF_AW-1:0] raddr_a = 0, raddr_b = 0;
  reg                        phase = 1'b0;
  reg                        macc_en = 1'b0;
  wire [`FTDL_ACC_W-1:0]     cascade_out;

  ftdl_tpe dut (
    .clk_h(clk_h), .clk_l(clk_l), .rst(rst),
    .wbuf_we(wbuf_we), .wbuf_waddr(wbuf_waddr), .wbuf_wdata(wbuf_wdata),
    .wbuf_raddr(wbuf_raddr),
    .actbuf_we(actbuf_we), .actbuf_waddr(actbuf_waddr),
    .actbuf_wdata(actbuf_wdata),
    .actbuf_raddr_a(raddr_a), .actbuf_raddr_b(raddr_b),
    .phase(phase), .macc_en(macc_en),
    .cascade_in({`FTDL_ACC_W{1'b0}}), .cascade_out(cascade_out)
  );

  reg [`FTDL_DATA_W-1:0] weights [0:%d];
  reg [`FTDL_DATA_W-1:0] acts    [0:%d];
  integer i;

  initial begin
    $readmemh("weights.hex", weights);
    $readmemh("acts.hex", acts);
    repeat (4) @(posedge clk_l);
    rst = 1'b0;

    // Preload WBUF (clk_l domain) and ActBUF (clk_h domain).
    for (i = 0; i < %d; i = i + 1) begin
      @(posedge clk_l);
      wbuf_we = 1'b1; wbuf_waddr = i[`FTDL_WBUF_AW-1:0];
      wbuf_wdata = weights[i];
    end
    @(posedge clk_l); wbuf_we = 1'b0;
    for (i = 0; i < %d; i = i + 1) begin
      @(posedge clk_h);
      actbuf_we = 1'b1; actbuf_waddr = i[`FTDL_ACTBUF_AW-1:0];
      actbuf_wdata = acts[i];
    end
    @(posedge clk_h); actbuf_we = 1'b0;

    // Double-pumped burst: weight address advances every clk_l; the two
    // activation addresses alternate by phase each clk_h cycle.
    for (i = 0; i < %d; i = i + 1) begin
      @(posedge clk_h);
      macc_en = 1'b1;
      phase = i[0];
      wbuf_raddr = (i / 2);
      raddr_a = (2 * (i / 2));
      raddr_b = (2 * (i / 2) + 1);
    end
    // Drain the DSP pipeline (A/B, M, P registers).
    repeat (8) begin @(posedge clk_h); macc_en = 1'b1; end
    macc_en = 1'b0;

    if ($signed(cascade_out) == %lld) begin
      $display("PASS: TPE accumulator = %%0d", $signed(cascade_out));
    end else begin
      $display("FAIL: expected %lld, got %%0d", $signed(cascade_out));
      $fatal(1);
    end
    $finish;
  end

endmodule
)",
                   burst_len / 2, burst_len, burst_len, burst_len / 2 - 1,
                   burst_len - 1, burst_len / 2, burst_len, burst_len, golden,
                   golden);
}

}  // namespace

RtlBundle generate_testbenches(const compiler::LayerProgram& program,
                               const arch::OverlayConfig& config,
                               const TbOptions& options) {
  FTDL_ASSERT(options.burst_len >= 4 && options.burst_len % 2 == 0);
  RtlBundle bundle = generate_overlay_rtl(config);

  // Deterministic stimulus: burst_len/2 weights, each used for two
  // consecutive activations (the double pump).
  Rng rng(0x7b);
  std::vector<std::int16_t> weights(static_cast<std::size_t>(options.burst_len / 2));
  std::vector<std::int16_t> acts(static_cast<std::size_t>(options.burst_len));
  for (auto& w : weights) w = rng.int16_small(63);
  for (auto& a : acts) a = rng.int16_small(63);

  long long golden = 0;
  for (int i = 0; i < options.burst_len; ++i) {
    golden += static_cast<long long>(weights[static_cast<std::size_t>(i / 2)]) *
              acts[static_cast<std::size_t>(i)];
  }

  bundle["insts.hex"] = hex_file_u64(program.encoded_stream());
  bundle["weights.hex"] = hex_file_u16(weights);
  bundle["acts.hex"] = hex_file_u16(acts);
  bundle["tb_ftdl_controller.v"] = tb_controller_v(program);
  bundle["tb_ftdl_tpe.v"] = tb_tpe_v(options.burst_len, golden);

  // Lint only the Verilog sources (hex files have no structure).
  RtlBundle verilog_only;
  for (const auto& [name, text] : bundle) {
    if (name.ends_with(".v") || name.ends_with(".vh")) verilog_only[name] = text;
  }
  lint_rtl(verilog_only);
  return bundle;
}

}  // namespace ftdl::rtlgen
