// Parameterized Verilog RTL generation (Sec. V-A: "the hardware part is
// written with parameterized Verilog RTL ... the primitive macros of
// distributed RAM, BRAM, and DSP are leveraged to realize the fine-grained
// hardware design").
//
// Generates the overlay's RTL from an OverlayConfig:
//   ftdl_defines.vh    — all parameters (D1/D2/D3, buffer depths, widths)
//   ftdl_tpe.v         — one TPE: DSP48 macro + WBUF BRAM18 + ActBUF LUTRAM,
//                        double-pump operand mux, cascade ports
//   ftdl_superblock.v  — D1-TPE cascade chain + PSumBUF + local control
//   ftdl_controller.v  — InstBUS decoder + the Listing-1 loop FSM
//   ftdl_top.v         — D3 rows x D2 columns of SuperBlocks, pipelined
//                        control/ActBUS distribution, PSumBUS columns
//
// The emitted code instantiates vendor primitives by macro name
// (DSP48E2, RAMB18E2, RAM64M) exactly as the paper describes, so synthesis
// maps them directly instead of inferring.
#pragma once

#include <map>
#include <string>

#include "arch/overlay_config.h"

namespace ftdl::rtlgen {

/// File name -> file contents for the full RTL bundle.
using RtlBundle = std::map<std::string, std::string>;

/// Generates the bundle; throws ftdl::ConfigError on an invalid config.
RtlBundle generate_overlay_rtl(const arch::OverlayConfig& config);

/// Writes the bundle into `directory` (created if needed); returns the
/// number of files written.
int write_rtl_bundle(const RtlBundle& bundle, const std::string& directory);

/// Structural sanity check used by tests and the generator itself:
/// module/endmodule, begin/end, case/endcase, generate/endgenerate balance
/// and non-empty port lists. Throws ftdl::Error with the offending file.
void lint_rtl(const RtlBundle& bundle);

}  // namespace ftdl::rtlgen
