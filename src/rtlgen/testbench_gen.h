// Self-checking Verilog testbench generation.
//
// Complements verilog_gen.h: from a compiled layer the generator emits
// unit-level testbenches plus their stimulus/golden hex files, the way an
// RTL project ships its verification collateral:
//   tb_ftdl_controller.v — streams the layer's real InstBUS words from
//       insts.hex, waits for done, and checks that the controller issued
//       exactly X*L*T MACC cycles (the Listing-1 loop nest).
//   tb_ftdl_tpe.v — preloads weights.hex into the WBUF, fills the ActBUF
//       from acts.hex, runs a double-pumped MACC burst and compares the
//       final cascade accumulator against golden.hex.
// No Verilog simulator is bundled in this repository; the benches are
// structurally linted here and runnable under any IEEE-1364 simulator.
#pragma once

#include "compiler/codegen.h"
#include "nn/tensor.h"
#include "rtlgen/verilog_gen.h"

namespace ftdl::rtlgen {

/// Testbench stimulus sizes (kept small so simulation is instant).
struct TbOptions {
  int burst_len = 32;  ///< MACC burst length of the TPE testbench
};

/// Generates tb files + hex stimulus for `program`'s instruction stream and
/// a deterministic weight/activation burst. The returned bundle also lints.
RtlBundle generate_testbenches(const compiler::LayerProgram& program,
                               const arch::OverlayConfig& config,
                               const TbOptions& options = {});

}  // namespace ftdl::rtlgen
