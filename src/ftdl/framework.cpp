#include "ftdl/framework.h"

#include <cmath>

#include "common/error.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "compiler/session.h"
#include "fpga/device_zoo.h"
#include "timing/placement.h"

namespace ftdl {

Framework::Framework(FrameworkOptions options)
    : options_(std::move(options)), device_(fpga::device_by_name(options_.device_name)) {
  arch::OverlayConfig& cfg = options_.config;

  if (options_.jobs > 0) {
    compiler::CompilerSession::global().set_jobs(options_.jobs);
  }

  // Place and time the overlay first: the clock policy may need the result,
  // and an overlay that does not fit should fail fast.
  timing::OverlayGeometry g;
  g.d1 = cfg.d1;
  g.d2 = cfg.d2;
  g.d3 = cfg.d3;
  const timing::PlacementResult placement = timing::place_ftdl(device_, g);
  timing_ = cfg.double_pump ? timing::analyze_double_pump(device_, placement)
                            : timing::analyze_single_clock(device_, placement);

  if (options_.clock_policy == ClockPolicy::DeriveFloor) {
    const double grid = 50e6;
    const double derived =
        std::floor(timing_.clk_h_fmax_hz / grid) * grid;
    cfg.clocks = fpga::ClockPair::from_high(derived);
    log_info(strformat("derived CLKh = %s (post-P&R fmax %s)",
                       format_hz(derived).c_str(),
                       format_hz(timing_.clk_h_fmax_hz).c_str()));
  } else if (cfg.clocks.clk_h_hz > timing_.clk_h_fmax_hz + 1.0) {
    throw ConfigError(strformat(
        "configured CLKh %s exceeds post-P&R fmax %s on %s",
        format_hz(cfg.clocks.clk_h_hz).c_str(),
        format_hz(timing_.clk_h_fmax_hz).c_str(), device_.name.c_str()));
  }

  cfg.validate_for_device(device_);
}

compiler::LayerProgram Framework::compile(const nn::Layer& layer) const {
  return compiler::CompilerSession::global().compile(
      layer, options_.config, options_.objective,
      options_.search_budget_per_layer);
}

NetworkReport Framework::evaluate(const nn::Network& net) const {
  NetworkReport report;
  report.schedule = compiler::schedule_network(
      net, options_.config, options_.objective,
      options_.search_budget_per_layer);

  // DRAM traffic totals over one frame.
  double rd_bytes = 0.0, wr_bytes = 0.0;
  for (const compiler::LayerProgram& p : report.schedule.layers) {
    rd_bytes += p.perf.dram_rd_bytes * p.layer.repeat;
    wr_bytes += p.perf.dram_wr_bytes * p.layer.repeat;
  }
  report.dram = dram::evaluate_volume(
      static_cast<std::uint64_t>(rd_bytes), static_cast<std::uint64_t>(wr_bytes),
      report.schedule.seconds_per_frame(), options_.dram_spec,
      options_.dram_channels);

  report.power = power::estimate_power(device_, options_.config,
                                       report.schedule.hardware_efficiency,
                                       report.dram.average_watts());
  return report;
}

}  // namespace ftdl
