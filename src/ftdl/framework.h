// One-stop framework object: device + overlay + compiler + power.
#pragma once

#include <string>

#include "arch/overlay_config.h"
#include "compiler/scheduler.h"
#include "dram/dram_power.h"
#include "fpga/device.h"
#include "power/fpga_power.h"
#include "timing/timing_analyzer.h"

namespace ftdl {

/// How the framework chooses the operating clock.
enum class ClockPolicy {
  Keep,         ///< use the clock already in the overlay config
  DeriveFloor,  ///< run placement + timing, round the achieved CLKh down to
                ///< a 50 MHz grid (how the paper arrives at 650 MHz)
};

struct FrameworkOptions {
  std::string device_name = "xcvu125";
  arch::OverlayConfig config;  ///< defaults to the Table II example
  ClockPolicy clock_policy = ClockPolicy::Keep;
  compiler::Objective objective = compiler::Objective::Performance;
  std::int64_t search_budget_per_layer = 200'000;
  int dram_channels = 2;
  dram::DramSpec dram_spec = dram::DramSpec::ddr4_2400();
  /// Compiler parallelism: > 0 resizes the shared compiler session's pool
  /// at construction; 0 keeps the session default (FTDL_JOBS env, else the
  /// hardware thread count). Schedules are bit-identical for any value.
  int jobs = 0;
};

/// End-to-end evaluation of one network on the configured overlay.
struct NetworkReport {
  compiler::NetworkSchedule schedule;
  dram::DramReport dram;
  power::PowerBreakdown power;

  double fps() const { return schedule.fps(); }
  double effective_gops() const { return schedule.effective_gops(); }
  double gops_per_w() const {
    return power::power_efficiency_gops_per_w(effective_gops(), power);
  }
};

class Framework {
 public:
  /// Builds the overlay on the device: validates the configuration, places
  /// it, runs timing, and (optionally) derives the operating clock.
  /// Throws ftdl::ConfigError when the overlay does not fit the device.
  explicit Framework(FrameworkOptions options);

  const fpga::Device& device() const { return device_; }
  const arch::OverlayConfig& config() const { return options_.config; }
  const timing::TimingReport& timing() const { return timing_; }
  const FrameworkOptions& options() const { return options_; }

  /// Compiles one overlay layer (search + lowering).
  compiler::LayerProgram compile(const nn::Layer& layer) const;

  /// Schedules a whole network and rolls up DRAM + FPGA power.
  NetworkReport evaluate(const nn::Network& net) const;

 private:
  FrameworkOptions options_;
  fpga::Device device_;
  timing::TimingReport timing_;
};

}  // namespace ftdl
