// Umbrella header: the FTDL framework public API.
//
// Typical use (see examples/quickstart.cpp):
//
//   ftdl::FrameworkOptions opts;                 // vu125 + Table II config
//   ftdl::Framework fw(opts);
//   ftdl::NetworkReport r = fw.evaluate(ftdl::nn::googlenet());
//   printf("%.1f FPS at %.1f GOPS/W\n", r.fps(), r.gops_per_w);
#pragma once

#include "arch/isa.h"                  // IWYU pragma: export
#include "arch/overlay_config.h"       // IWYU pragma: export
#include "baseline/prior_work.h"       // IWYU pragma: export
#include "compiler/codegen.h"          // IWYU pragma: export
#include "compiler/scheduler.h"        // IWYU pragma: export
#include "compiler/search.h"           // IWYU pragma: export
#include "dram/dram_power.h"           // IWYU pragma: export
#include "dse/explorer.h"              // IWYU pragma: export
#include "fpga/device_zoo.h"           // IWYU pragma: export
#include "ftdl/framework.h"            // IWYU pragma: export
#include "host/ewop_kernels.h"         // IWYU pragma: export
#include "host/host_pipeline.h"        // IWYU pragma: export
#include "multifpga/partition.h"       // IWYU pragma: export
#include "nn/model_zoo.h"              // IWYU pragma: export
#include "nn/reference.h"              // IWYU pragma: export
#include "power/fpga_power.h"          // IWYU pragma: export
#include "prune/channel_prune.h"       // IWYU pragma: export
#include "quant/quantize.h"            // IWYU pragma: export
#include "roofline/roofline.h"         // IWYU pragma: export
#include "rtlgen/testbench_gen.h"      // IWYU pragma: export
#include "rtlgen/verilog_gen.h"        // IWYU pragma: export
#include "runtime/executor.h"          // IWYU pragma: export
#include "sim/ftdl_sim.h"              // IWYU pragma: export
#include "timing/scaling_study.h"      // IWYU pragma: export
#include "winograd/winograd.h"         // IWYU pragma: export
