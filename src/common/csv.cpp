#include "common/csv.h"

#include "common/error.h"
#include "common/str_util.h"

namespace ftdl {

namespace {
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), arity_(header.size()), out_(path) {
  if (!out_) throw Error("cannot open CSV file for writing: " + path);
  write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  FTDL_ASSERT(cells.size() == arity_);
  write_row(cells);
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(strformat("%.6g", v));
  row(s);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace ftdl
