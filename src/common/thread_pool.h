// Shared worker pool for the compiler session (ftdl::ThreadPool).
//
// The framework's parallelism model is deliberately narrow: every parallel
// region is a `parallel_for` over independent tasks whose results are
// merged deterministically by the caller afterwards. The pool provides
// exactly that — no futures, no detached tasks — which keeps the
// determinism argument local to each call site.
//
// Design points:
//   * A pool of `jobs` means the calling thread plus `jobs - 1` workers;
//     `jobs == 1` degenerates to a plain serial loop (no threads are ever
//     created), so single-threaded builds and TSan-free tests pay nothing.
//   * The caller of parallel_for PARTICIPATES: it claims indices from the
//     same batch as the workers and only blocks once the batch has no
//     unclaimed work left. Nested parallel_for from inside a task is
//     therefore deadlock-free — the nested caller drains its own batch even
//     when every worker is busy elsewhere.
//   * The first exception a task throws is captured and rethrown on the
//     calling thread after the batch drains; remaining unclaimed indices
//     are skipped (tasks must not rely on siblings having run).
//   * worker_index() identifies pool threads (0-based) so instrumentation
//     can give each worker its own trace track; the calling thread reports
//     -1 and keeps using its own track.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace ftdl {

class ThreadPool {
 public:
  /// Creates a pool of parallelism `jobs` (>= 1); throws ftdl::ConfigError
  /// for jobs < 1. `jobs - 1` worker threads are started immediately.
  explicit ThreadPool(int jobs);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (worker threads + the calling thread).
  int jobs() const;

  /// Runs fn(0) ... fn(count - 1), each exactly once unless a sibling threw
  /// first, with no ordering guarantee across indices. Blocks until every
  /// claimed index has finished; rethrows the first captured exception.
  /// Safe to call from inside a task (nested batches drain independently).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Batches queued but not yet fully claimed (sampled; for observability).
  std::size_t queue_depth() const;

  /// 0-based index of the current pool worker thread, or -1 when called
  /// from any thread the pool does not own (including parallel_for's
  /// caller).
  static int worker_index();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Default parallelism: the FTDL_JOBS environment variable when it parses
/// to a positive integer, otherwise std::thread::hardware_concurrency()
/// (at least 1).
int default_jobs();

}  // namespace ftdl
