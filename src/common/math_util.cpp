#include "common/math_util.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"

namespace ftdl {

std::int64_t next_pow2(std::int64_t x) {
  FTDL_ASSERT(x >= 1);
  std::int64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

int ilog2(std::int64_t x) {
  FTDL_ASSERT(x >= 1);
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

std::vector<std::int64_t> divisors(std::int64_t n) {
  FTDL_ASSERT(n >= 1);
  std::vector<std::int64_t> lo, hi;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      lo.push_back(d);
      if (d != n / d) hi.push_back(n / d);
    }
  }
  lo.insert(lo.end(), hi.rbegin(), hi.rend());
  return lo;
}

std::vector<std::int64_t> tile_candidates(std::int64_t n) {
  FTDL_ASSERT(n >= 1);
  // Memoized: the mapping search queries the same trip counts millions of
  // times. thread_local keeps the hot path lock-free now that compile_layer
  // runs on CompilerSession pool threads; the few distinct trip counts per
  // network keep the per-thread copies tiny.
  thread_local std::unordered_map<std::int64_t, std::vector<std::int64_t>> cache;
  if (auto it = cache.find(n); it != cache.end()) return it->second;

  std::vector<std::int64_t> out = divisors(n);
  // Padded variants: rounding the trip count up to the next multiples of
  // small integers exposes near-divisors (e.g. trip 7 -> tile 4 with one
  // padded iteration). Padding is bounded to +25% wasted work.
  for (std::int64_t pad = n + 1; pad <= n + std::max<std::int64_t>(1, n / 4); ++pad) {
    for (std::int64_t d : divisors(pad)) {
      if (d <= n) out.push_back(d);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  cache.emplace(n, out);
  return out;
}

std::int64_t product(const std::vector<std::int64_t>& v) {
  std::int64_t p = 1;
  for (std::int64_t x : v) p *= x;
  return p;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

}  // namespace ftdl
