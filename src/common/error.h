// Error type for the FTDL framework.
//
// All recoverable failures in the library (illegal overlay configuration,
// infeasible mapping, malformed instruction stream, ...) throw ftdl::Error.
// Programming errors (violated preconditions inside the library) use
// FTDL_ASSERT which throws ftdl::InternalError so tests can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace ftdl {

/// Base class of all exceptions thrown by the FTDL library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a user-supplied configuration is invalid (bad overlay shape,
/// buffer sizes exceeding the device, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Thrown when the compiler cannot produce any feasible mapping for a layer.
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what)
      : Error("infeasible: " + what) {}
};

/// Thrown by FTDL_ASSERT on violated internal invariants.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  throw InternalError(std::string(expr) + " at " + file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace ftdl

/// Internal invariant check; active in all build types (the checks guard
/// scheduling/simulation correctness, not hot inner loops).
#define FTDL_ASSERT(expr)                                             \
  do {                                                                \
    if (!(expr)) ::ftdl::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (false)
