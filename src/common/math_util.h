// Small integer-math helpers shared across the framework.
#pragma once

#include <cstdint>
#include <vector>

namespace ftdl {

/// ceil(a / b) for positive integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Smallest multiple of `b` that is >= `a`.
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

/// True iff `x` is a power of two (x > 0).
constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x >= 1).
std::int64_t next_pow2(std::int64_t x);

/// floor(log2(x)) for x >= 1.
int ilog2(std::int64_t x);

/// All positive divisors of n, ascending. n >= 1.
std::vector<std::int64_t> divisors(std::int64_t n);

/// Candidate tile sizes for a loop of trip count `n`: all divisors of `n`
/// plus all divisors of the next few padded sizes, deduplicated and capped to
/// values <= n. Padding candidates let the scheduler trade a few invalid
/// (padded) iterations for a much better fit, per Eqn. 11 of the paper.
std::vector<std::int64_t> tile_candidates(std::int64_t n);

/// Product of a vector of trip counts (empty product = 1).
std::int64_t product(const std::vector<std::int64_t>& v);

/// Greatest common divisor.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

}  // namespace ftdl
