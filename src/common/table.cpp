#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace ftdl {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {
  FTDL_ASSERT(!header_.empty());
}

void AsciiTable::row(std::vector<std::string> cells) {
  FTDL_ASSERT(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }

  auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& r) {
    std::string s = "|";
    for (std::size_t c = 0; c < r.size(); ++c) {
      s += " " + r[c] + std::string(width[c] - r[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = hline() + render_row(header_) + hline();
  for (const auto& r : rows_) out += render_row(r);
  out += hline();
  return out;
}

void AsciiTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace ftdl
