// Clang thread-safety analysis annotations (ftdl::*).
//
// These macros expand to Clang's `__attribute__((...))` thread-safety
// attributes when the compiler supports them and to nothing everywhere
// else, so GCC/MSVC builds see plain declarations. Under Clang with
// `-Wthread-safety` (promoted by src/'s `-Werror`, and enforced by the
// `clang-thread-safety` CI job) the analysis statically proves that every
// access to a FTDL_GUARDED_BY member happens while its capability (mutex)
// is held.
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot see through it; annotated code must hold locks through the
// ftdl::Mutex / ftdl::MutexLock / ftdl::CondVar wrappers in
// common/mutex.h instead. The macro set and semantics follow the Clang
// documentation (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html);
// only the subset the codebase uses is defined here.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define FTDL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FTDL_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a capability ("mutex"): lockable state the analysis
/// tracks acquisition of.
#define FTDL_CAPABILITY(name) FTDL_THREAD_ANNOTATION_(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (lock guards).
#define FTDL_SCOPED_CAPABILITY FTDL_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while `mu` is held.
#define FTDL_GUARDED_BY(mu) FTDL_THREAD_ANNOTATION_(guarded_by(mu))

/// Pointer member whose *pointee* is guarded by `mu` (the pointer itself is
/// not).
#define FTDL_PT_GUARDED_BY(mu) FTDL_THREAD_ANNOTATION_(pt_guarded_by(mu))

/// Function requires the listed capabilities to be held by the caller.
#define FTDL_REQUIRES(...) \
  FTDL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must be called WITHOUT the listed capabilities held (guards
/// against self-deadlock on non-reentrant mutexes).
#define FTDL_EXCLUDES(...) \
  FTDL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define FTDL_ACQUIRE(...) \
  FTDL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define FTDL_RELEASE(...) \
  FTDL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define FTDL_TRY_ACQUIRE(result, ...) \
  FTDL_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Function returns a reference to the given capability (accessor for a
/// member mutex).
#define FTDL_RETURN_CAPABILITY(mu) FTDL_THREAD_ANNOTATION_(lock_returned(mu))

/// Escape hatch: turns the analysis off for one function. Reserved for
/// intentionally-unsynchronized accessors whose safety argument is
/// documented at the declaration (e.g. obs::Registry::events()).
#define FTDL_NO_THREAD_SAFETY_ANALYSIS \
  FTDL_THREAD_ANNOTATION_(no_thread_safety_analysis)
