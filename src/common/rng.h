// Deterministic pseudo-random number generator (splitmix64 core).
//
// Used everywhere the framework needs randomness (test tensors, randomized
// property sweeps) so results are reproducible across runs and platforms.
#pragma once

#include <cstdint>

namespace ftdl {

/// Small, fast, deterministic RNG. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Signed 16-bit sample in a narrow range, suitable as a quantized
  /// weight/activation value that will not overflow int48 accumulation.
  std::int16_t int16_small(std::int16_t magnitude = 127) {
    return static_cast<std::int16_t>(uniform(-magnitude, magnitude));
  }

 private:
  std::uint64_t state_;
};

}  // namespace ftdl
