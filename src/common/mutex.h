// Annotated mutex / lock / condition-variable wrappers (ftdl::Mutex).
//
// Thin, zero-overhead wrappers over the standard primitives that carry the
// Clang thread-safety attributes from common/thread_annotations.h, so
// `-Wthread-safety` can statically check FTDL_GUARDED_BY members.
// libstdc++'s std::mutex is unannotated — the analysis cannot track
// acquisitions made through it — which is the sole reason these exist
// (same approach as Abseil's absl::Mutex annotations).
//
// Concurrency-bearing state in the framework (the compiler session cache,
// the thread pool's batch queue, the obs registry, the serving runtime's
// request queue) declares an ftdl::Mutex, tags the protected members with
// FTDL_GUARDED_BY(mu), and holds the lock via MutexLock. CondVar wraps
// std::condition_variable_any waiting directly on the Mutex; its wait
// methods are annotated FTDL_REQUIRES(mu), so waiting without the lock is
// a compile error under Clang.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace ftdl {

/// std::mutex with capability annotations. Satisfies BasicLockable /
/// Lockable, so it composes with standard facilities where needed.
class FTDL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FTDL_ACQUIRE() { mu_.lock(); }
  void unlock() FTDL_RELEASE() { mu_.unlock(); }
  bool try_lock() FTDL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over an ftdl::Mutex; the annotated counterpart of
/// std::unique_lock for the common acquire-in-ctor case. Supports early
/// release (unlock/relock) for the notify-outside-the-lock pattern; the
/// destructor releases only if still held.
class FTDL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FTDL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FTDL_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before scope exit (to notify or do slow work
  /// outside the critical section).
  void unlock() FTDL_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

  /// Re-acquires after an early unlock().
  void lock() FTDL_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable waiting directly on an ftdl::Mutex. Every wait
/// requires the mutex held (enforced at compile time under Clang); the
/// mutex is released while blocked and re-held on return, exactly like
/// std::condition_variable, so GUARDED_BY members stay accessible across
/// the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) FTDL_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) FTDL_REQUIRES(mu) {
    while (!pred()) cv_.wait(mu);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      FTDL_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ftdl
