// Fixed-point helpers for the 16-bit quantized datapath.
//
// FTDL's datapath is int16 weight x int16 activation with wide (48-bit)
// accumulation inside the DSP cascade, matching Xilinx DSP48 semantics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace ftdl {

/// Accumulator type of the DSP cascade (DSP48 has a 48-bit accumulator; we
/// model it with int64 and saturate at the 48-bit boundary when extracting).
using acc_t = std::int64_t;

constexpr acc_t kAcc48Max = (acc_t{1} << 47) - 1;
constexpr acc_t kAcc48Min = -(acc_t{1} << 47);

/// One multiply-accumulate as performed by a DSP slice.
constexpr acc_t macc(acc_t acc, std::int16_t w, std::int16_t a) {
  return acc + static_cast<acc_t>(w) * static_cast<acc_t>(a);
}

/// Saturate a wide accumulator to the 48-bit DSP range.
constexpr acc_t saturate48(acc_t v) {
  return std::clamp(v, kAcc48Min, kAcc48Max);
}

/// Requantize an accumulator back to int16 with a right shift (the host-side
/// EWOP stage does this between layers), with saturation.
constexpr std::int16_t requantize(acc_t v, int shift) {
  const acc_t shifted = v >> shift;
  const acc_t lo = std::numeric_limits<std::int16_t>::min();
  const acc_t hi = std::numeric_limits<std::int16_t>::max();
  return static_cast<std::int16_t>(std::clamp(shifted, lo, hi));
}

/// ReLU on the quantized domain.
constexpr std::int16_t relu(std::int16_t v) { return v > 0 ? v : std::int16_t{0}; }

}  // namespace ftdl
