#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace ftdl {

namespace {
thread_local int t_worker_index = -1;
}  // namespace

/// One parallel_for invocation. Indices are claimed lock-free via `next`;
/// completion bookkeeping (`done`, the first error, the waiter wake-up)
/// goes through the owning pool's mutex.
struct Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t done = 0;  ///< finished or skipped indices (pool mutex)
  std::exception_ptr error;  ///< first task exception (pool mutex)
  std::condition_variable finished;
};

struct ThreadPool::Impl {
  int jobs = 1;
  mutable std::mutex mu;
  std::condition_variable work_ready;
  std::deque<std::shared_ptr<Batch>> queue;  ///< batches with unclaimed work
  std::vector<std::thread> workers;
  bool stopping = false;

  /// Claims and runs indices of `b` until none remain unclaimed. Returns
  /// with the batch possibly still having tasks in flight on other threads.
  void drain(Batch& b) {
    for (;;) {
      const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b.count) return;
      std::exception_ptr err;
      bool skip;
      {
        std::lock_guard<std::mutex> lock(mu);
        skip = b.error != nullptr;
      }
      if (!skip) {
        try {
          (*b.fn)(i);
        } catch (...) {
          err = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      if (err && !b.error) b.error = err;
      if (++b.done == b.count) b.finished.notify_all();
    }
  }

  void worker_loop(int index) {
    t_worker_index = index;
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_ready.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        batch = queue.front();
        // A batch leaves the queue as soon as all indices are claimed; the
        // front may already be exhausted by the time this worker wakes.
        if (batch->next.load(std::memory_order_relaxed) >= batch->count) {
          queue.pop_front();
          continue;
        }
      }
      drain(*batch);
      std::lock_guard<std::mutex> lock(mu);
      if (!queue.empty() && queue.front() == batch) queue.pop_front();
    }
  }
};

ThreadPool::ThreadPool(int jobs) : impl_(std::make_unique<Impl>()) {
  if (jobs < 1) throw ConfigError("thread pool needs jobs >= 1");
  impl_->jobs = jobs;
  impl_->workers.reserve(static_cast<std::size_t>(jobs - 1));
  for (int i = 0; i < jobs - 1; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

int ThreadPool::jobs() const { return impl_->jobs; }

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->queue.size();
}

int ThreadPool::worker_index() { return t_worker_index; }

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (impl_->jobs == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(batch);
  }
  impl_->work_ready.notify_all();
  impl_->drain(*batch);
  std::unique_lock<std::mutex> lock(impl_->mu);
  // All indices are claimed; retire the batch so queue_depth reflects only
  // batches that still have work to hand out.
  for (auto it = impl_->queue.begin(); it != impl_->queue.end(); ++it) {
    if (*it == batch) {
      impl_->queue.erase(it);
      break;
    }
  }
  batch->finished.wait(lock, [&] { return batch->done == batch->count; });
  const std::exception_ptr err = batch->error;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

int default_jobs() {
  if (const char* env = std::getenv("FTDL_JOBS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace ftdl
