#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ftdl {

namespace {
thread_local int t_worker_index = -1;
}  // namespace

/// One parallel_for invocation. Indices are claimed lock-free via `next`;
/// completion bookkeeping (`done`, the first error, the waiter wake-up)
/// goes through the owning pool's mutex — Batch carries no mutex of its
/// own, so `done` / `error` cannot be expressed as FTDL_GUARDED_BY and are
/// guarded by convention (every access in Impl holds Impl::mu).
struct Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t done = 0;  ///< finished or skipped indices (pool mutex)
  std::exception_ptr error;  ///< first task exception (pool mutex)
  CondVar finished;
};

struct ThreadPool::Impl {
  int jobs = 1;
  mutable Mutex mu;
  CondVar work_ready;
  /// Batches with unclaimed work.
  std::deque<std::shared_ptr<Batch>> queue FTDL_GUARDED_BY(mu);
  std::vector<std::thread> workers;
  bool stopping FTDL_GUARDED_BY(mu) = false;

  /// Claims and runs indices of `b` until none remain unclaimed. Returns
  /// with the batch possibly still having tasks in flight on other threads.
  void drain(Batch& b) FTDL_EXCLUDES(mu) {
    for (;;) {
      const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b.count) return;
      std::exception_ptr err;
      bool skip;
      {
        MutexLock lock(mu);
        skip = b.error != nullptr;
      }
      if (!skip) {
        try {
          (*b.fn)(i);
        } catch (...) {
          err = std::current_exception();
        }
      }
      MutexLock lock(mu);
      if (err && !b.error) b.error = err;
      if (++b.done == b.count) b.finished.notify_all();
    }
  }

  void worker_loop(int index) FTDL_EXCLUDES(mu) {
    t_worker_index = index;
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        MutexLock lock(mu);
        while (!stopping && queue.empty()) work_ready.wait(mu);
        if (stopping && queue.empty()) return;
        batch = queue.front();
        // A batch leaves the queue as soon as all indices are claimed; the
        // front may already be exhausted by the time this worker wakes.
        if (batch->next.load(std::memory_order_relaxed) >= batch->count) {
          queue.pop_front();
          continue;
        }
      }
      drain(*batch);
      MutexLock lock(mu);
      if (!queue.empty() && queue.front() == batch) queue.pop_front();
    }
  }
};

ThreadPool::ThreadPool(int jobs) : impl_(std::make_unique<Impl>()) {
  if (jobs < 1) throw ConfigError("thread pool needs jobs >= 1");
  impl_->jobs = jobs;
  impl_->workers.reserve(static_cast<std::size_t>(jobs - 1));
  for (int i = 0; i < jobs - 1; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

int ThreadPool::jobs() const { return impl_->jobs; }

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(impl_->mu);
  return impl_->queue.size();
}

int ThreadPool::worker_index() { return t_worker_index; }

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (impl_->jobs == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->fn = &fn;
  {
    MutexLock lock(impl_->mu);
    impl_->queue.push_back(batch);
  }
  impl_->work_ready.notify_all();
  impl_->drain(*batch);
  std::exception_ptr err;
  {
    MutexLock lock(impl_->mu);
    // All indices are claimed; retire the batch so queue_depth reflects
    // only batches that still have work to hand out.
    for (auto it = impl_->queue.begin(); it != impl_->queue.end(); ++it) {
      if (*it == batch) {
        impl_->queue.erase(it);
        break;
      }
    }
    batch->finished.wait(impl_->mu,
                         [&] { return batch->done == batch->count; });
    err = batch->error;
  }
  if (err) std::rethrow_exception(err);
}

int default_jobs() {
  if (const char* env = std::getenv("FTDL_JOBS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace ftdl
