// ftdl::simd — portable vectorized int16 MACC kernels with runtime dispatch.
//
// The fast simulation engine's dense bursts reduce to two inner-loop shapes
// over contiguous int16 data:
//
//   dot:  acc      += sum_j w[j] * in[j]          (reduction column loop)
//   axpy: out[j]   += w * in[j]   for every j     (broadcast-weight column)
//
// Both are EXACT integer kernels: every int16*int16 product is formed as a
// full 32-bit value and accumulated in 64-bit (acc_t) lanes, so the SIMD
// paths are bit-identical to the scalar oracles for *every* input —
// including the (-32768)^2 corner that overflows pairwise-multiply-add
// instructions like _mm256_madd_epi16 (which is why that instruction is
// deliberately not used). Integer addition is associative, so lane-wise
// reassociation of the dot reduction cannot change the result.
//
// Dispatch: the implementation is chosen once at first use —
//   * x86-64: AVX2 via per-function target attributes when the running CPU
//     reports it (__builtin_cpu_supports), so no special build flags are
//     needed and the same binary runs on non-AVX2 hosts;
//   * aarch64: NEON (baseline, compile-time);
//   * otherwise, or with -DFTDL_SIMD=OFF, or FTDL_SIMD=0 in the
//     environment: the scalar oracles.
// set_enabled(false) forces the scalar oracles at runtime — the test hook
// behind the SIMD≡scalar sweeps in tests/test_sim_engine.cpp.
#pragma once

#include <cstdint>

#include "common/fixed_point.h"

namespace ftdl::simd {

namespace detail {
/// Out-of-line dispatch through the active implementation (simd.cpp).
acc_t dot_i16_dispatch(const std::int16_t* w, const std::int16_t* in,
                       std::int64_t n);
void axpy_i16_dispatch(acc_t* out, const std::int16_t* in, std::int16_t w,
                       std::int64_t n);
}  // namespace detail

/// Sweeps shorter than one vector's worth of work stay inline at the call
/// site: a function-pointer call costs more than a handful of scalar MACCs
/// (the 7-wide kernel columns of a 7x7 conv are the motivating case).
constexpr std::int64_t kInlineCutoff = 8;

/// Sum of w[j] * in[j] over j in [0, n). Exact in acc_t.
inline acc_t dot_i16(const std::int16_t* w, const std::int16_t* in,
                     std::int64_t n) {
  if (n < kInlineCutoff) {
    acc_t acc = 0;
    for (std::int64_t j = 0; j < n; ++j)
      acc += static_cast<acc_t>(w[j]) * static_cast<acc_t>(in[j]);
    return acc;
  }
  return detail::dot_i16_dispatch(w, in, n);
}

/// out[j] += w * in[j] for j in [0, n). Exact in acc_t.
inline void axpy_i16(acc_t* out, const std::int16_t* in, std::int16_t w,
                     std::int64_t n) {
  if (n < kInlineCutoff) {
    const acc_t wv = w;
    for (std::int64_t j = 0; j < n; ++j)
      out[j] += wv * static_cast<acc_t>(in[j]);
    return;
  }
  detail::axpy_i16_dispatch(out, in, w, n);
}

/// The scalar oracles the vector paths are pinned against.
acc_t dot_i16_scalar(const std::int16_t* w, const std::int16_t* in,
                     std::int64_t n);
void axpy_i16_scalar(acc_t* out, const std::int16_t* in, std::int16_t w,
                     std::int64_t n);

/// Name of the active implementation: "avx2", "neon" or "scalar".
const char* isa_name();

/// int16 lanes of the active implementation (16 AVX2, 8 NEON, 1 scalar).
int lanes();

/// True when a vector implementation (not the scalar oracle) is active.
bool active();

/// Runtime kill switch: set_enabled(false) routes dot_i16/axpy_i16 through
/// the scalar oracles until re-enabled. Enabling is a no-op when no vector
/// implementation is compiled in or supported by the CPU. Not thread-safe
/// against concurrent kernel calls; intended for test setup and tools.
void set_enabled(bool on);

}  // namespace ftdl::simd
