// ftdl::TensorArena — a thread-aware pooled allocator for tensor storage.
//
// Steady-state inference allocates the same tensor shapes every request:
// layer intermediates, accumulators, weight-group slices, the output. A
// TensorArena recycles those blocks instead of returning them to the heap:
//
//   * blocks are pooled in power-of-two size classes, so a request's
//     tensors are served from the free lists after the first (warm-up)
//     pass — zero heap allocations in steady state (pinned by the
//     allocation-counter test in tests/test_serve.cpp);
//   * installation is scoped and per-thread (TensorArena::Scope): inside a
//     scope, every ArenaVec/TensorT allocation on that thread draws from
//     the installed arena. Code that never installs one is unaffected —
//     ArenaVec falls back to the plain heap;
//   * blocks remember their owning arena (a shared owner handle), so a
//     tensor may safely escape the scope — and the thread — that allocated
//     it: its storage returns to the owning pool on destruction, from any
//     thread, and keeps the pool's core alive until then;
//   * ArenaStats (reuses / fallback_allocs / bytes / high-water) make the
//     zero-alloc claim observable; serve publishes them as
//     runtime/arena_* counters and a high-water gauge.
//
// The pool core is mutex-protected, so cross-thread releases are safe; the
// intended pattern (one arena per serve worker) keeps the lock uncontended.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

namespace ftdl {

namespace arena_detail {

struct Core;

/// One allocated block: pointer, rounded byte capacity, and a shared handle
/// to the owning arena core (null = plain heap block).
struct Buffer {
  void* p = nullptr;
  std::size_t cap = 0;
  std::shared_ptr<void> owner;
};

/// Allocates >= `bytes` from the calling thread's installed arena (heap
/// fallback when none is installed). Contents are uninitialized.
Buffer acquire(std::size_t bytes);

/// Returns the block to its owning arena (or the heap) and clears `b`.
void release(Buffer& b) noexcept;

}  // namespace arena_detail

/// Pool counters. `bytes_allocated` is the total capacity the arena ever
/// drew from the heap (live + pooled); `bytes_in_use` the capacity of
/// currently outstanding blocks; `high_water_bytes` the peak of in-use.
struct ArenaStats {
  std::int64_t reuses = 0;
  std::int64_t fallback_allocs = 0;
  std::int64_t bytes_allocated = 0;
  std::int64_t bytes_in_use = 0;
  std::int64_t high_water_bytes = 0;
};

class TensorArena {
 public:
  TensorArena();
  ~TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  ArenaStats stats() const;

  /// Installs the arena as the calling thread's allocation target for the
  /// scope's lifetime; restores the previous target (usually none) on exit.
  /// Scopes nest.
  class Scope {
   public:
    explicit Scope(TensorArena& arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::shared_ptr<void> prev_;
  };

 private:
  std::shared_ptr<arena_detail::Core> core_;
};

/// Minimal fixed-size trivial-element array backed by arena_detail blocks —
/// the storage of TensorT. Mirrors the std::vector surface the tensors
/// used: value-initialized elements, deep copies, moves that steal.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivial_v<T>,
                "ArenaVec supports trivial element types only");

 public:
  ArenaVec() = default;
  explicit ArenaVec(std::int64_t n) { reset(n); }
  ~ArenaVec() { arena_detail::release(buf_); }

  ArenaVec(const ArenaVec& o) {
    reset_uninit(o.n_);
    copy_from(o);
  }
  ArenaVec& operator=(const ArenaVec& o) {
    if (this == &o) return *this;
    // Reuse the block when it is big enough: steady-state assignment of a
    // recurring shape touches no allocator at all.
    if (buf_.cap < static_cast<std::size_t>(o.n_) * sizeof(T)) {
      arena_detail::release(buf_);
      reset_uninit(o.n_);
    } else {
      n_ = o.n_;
    }
    copy_from(o);
    return *this;
  }
  ArenaVec(ArenaVec&& o) noexcept : buf_(o.buf_), n_(o.n_) {
    o.buf_ = {};
    o.n_ = 0;
  }
  ArenaVec& operator=(ArenaVec&& o) noexcept {
    if (this == &o) return *this;
    arena_detail::release(buf_);
    buf_ = o.buf_;
    n_ = o.n_;
    o.buf_ = {};
    o.n_ = 0;
    return *this;
  }

  std::int64_t size() const { return n_; }
  T* data() { return static_cast<T*>(buf_.p); }
  const T* data() const { return static_cast<const T*>(buf_.p); }
  T* begin() { return data(); }
  T* end() { return data() + n_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + n_; }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  bool operator==(const ArenaVec& o) const {
    return n_ == o.n_ &&
           (n_ == 0 || std::memcmp(data(), o.data(),
                                   static_cast<std::size_t>(n_) * sizeof(T)) ==
                           0);
  }

 private:
  void reset_uninit(std::int64_t n) {
    buf_ = arena_detail::acquire(static_cast<std::size_t>(n) * sizeof(T));
    n_ = n;
  }
  void reset(std::int64_t n) {
    reset_uninit(n);
    if (n_ > 0)
      std::memset(buf_.p, 0, static_cast<std::size_t>(n_) * sizeof(T));
  }
  void copy_from(const ArenaVec& o) {
    if (n_ > 0)
      std::memcpy(buf_.p, o.buf_.p, static_cast<std::size_t>(n_) * sizeof(T));
  }

  arena_detail::Buffer buf_;
  std::int64_t n_ = 0;
};

}  // namespace ftdl
