// String formatting helpers for reports and benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftdl {

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "650.0 MHz", "1.23 GHz" from a frequency in Hz.
std::string format_hz(double hz);

/// "13.7 MB", "345.1 KB" from a byte count.
std::string format_bytes(double bytes);

/// "3.14 G", "27.5 M" SI-ish count formatting.
std::string format_count(double n);

/// "81.1%" from a ratio in [0,1].
std::string format_percent(double ratio, int decimals = 1);

/// Join a vector of int64 as "a x b x c".
std::string join_x(const std::vector<std::int64_t>& v);

/// Strict base-10 integer parsing for CLI flags: the whole string must be a
/// number in [min_v, max_v] — garbage, trailing text, empty input and
/// overflow all return false (std::atoi silently returns 0 for all four).
/// `*out` is written only on success.
bool parse_int_strict(const char* s, std::int64_t min_v, std::int64_t max_v,
                      std::int64_t* out);

/// Strict decimal parsing for CLI flags: the whole string must be a finite
/// number. `*out` is written only on success.
bool parse_double_strict(const char* s, double* out);

}  // namespace ftdl
