#include "common/arena.h"

#include <algorithm>
#include <array>
#include <bit>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ftdl {

namespace {

/// Size classes are powers of two from 64 bytes (class 6) up; the class
/// index is the exponent. 48 classes cover every allocation the int16/int64
/// tensors can express.
constexpr int kMinClass = 6;
constexpr int kClasses = 48;

int size_class(std::size_t bytes) {
  const int w = bytes <= 1 ? 1 : std::bit_width(bytes - 1);
  return w < kMinClass ? kMinClass : w;
}

}  // namespace

namespace arena_detail {

struct Core {
  mutable Mutex mu;
  std::array<std::vector<void*>, kClasses> free FTDL_GUARDED_BY(mu);
  ArenaStats stats FTDL_GUARDED_BY(mu);

  ~Core() {
    // Outstanding blocks hold a shared owner handle, so the core only dies
    // once every block has been released; the free lists are all there is.
    for (auto& fl : free)
      for (void* p : fl) ::operator delete(p);
  }

  void* acquire(int cls) {
    const auto cap = static_cast<std::int64_t>(std::size_t{1} << cls);
    MutexLock lock(mu);
    void* p = nullptr;
    auto& fl = free[static_cast<std::size_t>(cls)];
    if (!fl.empty()) {
      p = fl.back();
      fl.pop_back();
      ++stats.reuses;
    } else {
      p = ::operator new(std::size_t{1} << cls);
      ++stats.fallback_allocs;
      stats.bytes_allocated += cap;
    }
    stats.bytes_in_use += cap;
    stats.high_water_bytes =
        std::max(stats.high_water_bytes, stats.bytes_in_use);
    return p;
  }

  void release(void* p, int cls) noexcept {
    MutexLock lock(mu);
    free[static_cast<std::size_t>(cls)].push_back(p);
    stats.bytes_in_use -= static_cast<std::int64_t>(std::size_t{1} << cls);
  }
};

}  // namespace arena_detail

namespace {

/// The calling thread's installed arena core (TensorArena::Scope).
thread_local std::shared_ptr<arena_detail::Core> t_current;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

}  // namespace

namespace arena_detail {

Buffer acquire(std::size_t bytes) {
  Buffer b;
  if (bytes == 0) return b;
  const int cls = size_class(bytes);
  b.cap = std::size_t{1} << cls;
  if (t_current) {
    b.p = t_current->acquire(cls);
    b.owner = std::shared_ptr<void>(t_current, t_current.get());
  } else {
    b.p = ::operator new(b.cap);
  }
  return b;
}

void release(Buffer& b) noexcept {
  if (b.p != nullptr) {
    if (b.owner) {
      static_cast<arena_detail::Core*>(b.owner.get())
          ->release(b.p, size_class(b.cap));
    } else {
      ::operator delete(b.p);
    }
  }
  b = {};
}

}  // namespace arena_detail

TensorArena::TensorArena() : core_(std::make_shared<arena_detail::Core>()) {}

ArenaStats TensorArena::stats() const {
  MutexLock lock(core_->mu);
  return core_->stats;
}

TensorArena::Scope::Scope(TensorArena& arena) : prev_(std::move(t_current)) {
  t_current = arena.core_;
}

TensorArena::Scope::~Scope() {
  t_current =
      std::static_pointer_cast<arena_detail::Core>(std::move(prev_));
}

}  // namespace ftdl
