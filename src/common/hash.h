// Content hashing for cache keys (ftdl::Hash64).
//
// A streaming FNV-1a 64-bit hasher with typed feeders that canonicalize
// every value to a fixed little-endian byte sequence, so a key derived on
// any host is stable across runs, build types and (within one ABI) compiler
// versions. Strings are length-prefixed: ("ab","c") and ("a","bc") hash
// differently. Doubles hash by bit pattern, so -0.0 != 0.0 and every NaN
// payload is distinct — callers that want value semantics must normalize
// first (the compiler session does not: configs are authored, not
// computed).
//
// This is a cache key, not a cryptographic digest: collisions are
// astronomically unlikely for the few thousand programs a process compiles
// but are not adversarially hard.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace ftdl {

class Hash64 {
 public:
  Hash64& bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ull;  // FNV prime
    }
    return *this;
  }

  Hash64& u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    return bytes(b, sizeof(b));
  }

  Hash64& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  Hash64& i32(int v) { return u64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(v))); }
  Hash64& boolean(bool v) { return u64(v ? 1 : 0); }

  Hash64& f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }

  Hash64& str(const std::string& s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

}  // namespace ftdl
