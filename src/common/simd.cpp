#include "common/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(FTDL_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define FTDL_SIMD_AVX2 1
#include <immintrin.h>
#endif

#if defined(FTDL_SIMD_ENABLED) && defined(__aarch64__)
#define FTDL_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ftdl::simd {

acc_t dot_i16_scalar(const std::int16_t* w, const std::int16_t* in,
                     std::int64_t n) {
  acc_t acc = 0;
  for (std::int64_t j = 0; j < n; ++j)
    acc += static_cast<acc_t>(w[j]) * static_cast<acc_t>(in[j]);
  return acc;
}

void axpy_i16_scalar(acc_t* out, const std::int16_t* in, std::int16_t w,
                     std::int64_t n) {
  const acc_t wv = w;
  for (std::int64_t j = 0; j < n; ++j) out[j] += wv * static_cast<acc_t>(in[j]);
}

namespace {

#if defined(FTDL_SIMD_AVX2)

// Exact 32-bit products of two int16 vectors via mullo/mulhi + unpack.
// unpack*_epi16 interleaves within each 128-bit lane, so the int32 products
// land as: plo = p[0..3] | p[8..11], phi = p[4..7] | p[12..15]. The dot
// reduction is order-free; the axpy store indexes the four quarters back to
// their positions explicitly.

__attribute__((target("avx2"))) acc_t dot_i16_avx2(const std::int16_t* w,
                                                   const std::int16_t* in,
                                                   std::int64_t n) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256i vw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + j));
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + j));
    const __m256i lo = _mm256_mullo_epi16(vw, vi);
    const __m256i hi = _mm256_mulhi_epi16(vw, vi);
    const __m256i plo = _mm256_unpacklo_epi16(lo, hi);
    const __m256i phi = _mm256_unpackhi_epi16(lo, hi);
    acc0 = _mm256_add_epi64(
        acc0, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(plo)));
    acc1 = _mm256_add_epi64(
        acc1, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(plo, 1)));
    acc0 = _mm256_add_epi64(
        acc0, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(phi)));
    acc1 = _mm256_add_epi64(
        acc1, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(phi, 1)));
  }
  if (j + 8 <= n) {
    // Half-width step for the [8, 16) tail: same exact-product recipe on
    // one 128-bit lane.
    const __m128i vw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + j));
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + j));
    const __m128i lo = _mm_mullo_epi16(vw, vi);
    const __m128i hi = _mm_mulhi_epi16(vw, vi);
    acc0 = _mm256_add_epi64(acc0,
                            _mm256_cvtepi32_epi64(_mm_unpacklo_epi16(lo, hi)));
    acc1 = _mm256_add_epi64(acc1,
                            _mm256_cvtepi32_epi64(_mm_unpackhi_epi16(lo, hi)));
    j += 8;
  }
  acc0 = _mm256_add_epi64(acc0, acc1);
  alignas(32) std::int64_t lane[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), acc0);
  acc_t acc = lane[0] + lane[1] + lane[2] + lane[3];
  for (; j < n; ++j)
    acc += static_cast<acc_t>(w[j]) * static_cast<acc_t>(in[j]);
  return acc;
}

__attribute__((target("avx2"))) void axpy_i16_avx2(acc_t* out,
                                                   const std::int16_t* in,
                                                   std::int16_t w,
                                                   std::int64_t n) {
  const __m256i vw = _mm256_set1_epi16(w);
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + j));
    const __m256i lo = _mm256_mullo_epi16(vi, vw);
    const __m256i hi = _mm256_mulhi_epi16(vi, vw);
    const __m256i plo = _mm256_unpacklo_epi16(lo, hi);
    const __m256i phi = _mm256_unpackhi_epi16(lo, hi);
    __m256i o0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + j));
    o0 = _mm256_add_epi64(o0,
                          _mm256_cvtepi32_epi64(_mm256_castsi256_si128(plo)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j), o0);
    __m256i o1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + j + 4));
    o1 = _mm256_add_epi64(o1,
                          _mm256_cvtepi32_epi64(_mm256_castsi256_si128(phi)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 4), o1);
    __m256i o2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + j + 8));
    o2 = _mm256_add_epi64(
        o2, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(plo, 1)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 8), o2);
    __m256i o3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + j + 12));
    o3 = _mm256_add_epi64(
        o3, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(phi, 1)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 12), o3);
  }
  if (j + 8 <= n) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + j));
    const __m128i vw8 = _mm256_castsi256_si128(vw);
    const __m128i lo = _mm_mullo_epi16(vi, vw8);
    const __m128i hi = _mm_mulhi_epi16(vi, vw8);
    __m256i o0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + j));
    o0 = _mm256_add_epi64(o0,
                          _mm256_cvtepi32_epi64(_mm_unpacklo_epi16(lo, hi)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j), o0);
    __m256i o1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + j + 4));
    o1 = _mm256_add_epi64(o1,
                          _mm256_cvtepi32_epi64(_mm_unpackhi_epi16(lo, hi)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 4), o1);
    j += 8;
  }
  const acc_t wv = w;
  for (; j < n; ++j) out[j] += wv * static_cast<acc_t>(in[j]);
}

#endif  // FTDL_SIMD_AVX2

#if defined(FTDL_SIMD_NEON)

acc_t dot_i16_neon(const std::int16_t* w, const std::int16_t* in,
                   std::int64_t n) {
  int64x2_t acc2 = vdupq_n_s64(0);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const int16x8_t vw = vld1q_s16(w + j);
    const int16x8_t vi = vld1q_s16(in + j);
    const int32x4_t p0 = vmull_s16(vget_low_s16(vw), vget_low_s16(vi));
    const int32x4_t p1 = vmull_s16(vget_high_s16(vw), vget_high_s16(vi));
    acc2 = vaddq_s64(acc2, vpaddlq_s32(p0));
    acc2 = vaddq_s64(acc2, vpaddlq_s32(p1));
  }
  acc_t acc = vgetq_lane_s64(acc2, 0) + vgetq_lane_s64(acc2, 1);
  for (; j < n; ++j)
    acc += static_cast<acc_t>(w[j]) * static_cast<acc_t>(in[j]);
  return acc;
}

void axpy_i16_neon(acc_t* out, const std::int16_t* in, std::int16_t w,
                   std::int64_t n) {
  const int16x4_t vw = vdup_n_s16(w);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const int16x8_t vi = vld1q_s16(in + j);
    const int32x4_t p0 = vmull_s16(vget_low_s16(vi), vw);
    const int32x4_t p1 = vmull_s16(vget_high_s16(vi), vw);
    int64x2_t o0 = vld1q_s64(out + j);
    o0 = vaddw_s32(o0, vget_low_s32(p0));
    vst1q_s64(out + j, o0);
    int64x2_t o1 = vld1q_s64(out + j + 2);
    o1 = vaddw_s32(o1, vget_high_s32(p0));
    vst1q_s64(out + j + 2, o1);
    int64x2_t o2 = vld1q_s64(out + j + 4);
    o2 = vaddw_s32(o2, vget_low_s32(p1));
    vst1q_s64(out + j + 4, o2);
    int64x2_t o3 = vld1q_s64(out + j + 6);
    o3 = vaddw_s32(o3, vget_high_s32(p1));
    vst1q_s64(out + j + 6, o3);
  }
  const acc_t wv = w;
  for (; j < n; ++j) out[j] += wv * static_cast<acc_t>(in[j]);
}

#endif  // FTDL_SIMD_NEON

using DotFn = acc_t (*)(const std::int16_t*, const std::int16_t*,
                        std::int64_t);
using AxpyFn = void (*)(acc_t*, const std::int16_t*, std::int16_t,
                        std::int64_t);

struct Impl {
  DotFn dot = dot_i16_scalar;
  AxpyFn axpy = axpy_i16_scalar;
  const char* name = "scalar";
  int lanes = 1;
};

constexpr Impl kScalar{};

/// Best vector implementation compiled in AND supported by this machine
/// (scalar when neither applies, or when the FTDL_SIMD environment variable
/// is "0"/"off"/"scalar").
const Impl& vector_impl() {
  static const Impl impl = [] {
    Impl v = kScalar;
    const char* env = std::getenv("FTDL_SIMD");
    if (env != nullptr && (std::strcmp(env, "0") == 0 ||
                           std::strcmp(env, "off") == 0 ||
                           std::strcmp(env, "scalar") == 0)) {
      return v;
    }
#if defined(FTDL_SIMD_AVX2)
    if (__builtin_cpu_supports("avx2")) {
      v = Impl{dot_i16_avx2, axpy_i16_avx2, "avx2", 16};
    }
#elif defined(FTDL_SIMD_NEON)
    v = Impl{dot_i16_neon, axpy_i16_neon, "neon", 8};
#endif
    return v;
  }();
  return impl;
}

/// Active implementation; flipped between vector_impl() and kScalar by
/// set_enabled(). Plain pointer: readers race-free because set_enabled is
/// documented as setup-time only.
const Impl* g_active = nullptr;

const Impl& active_impl() {
  if (g_active == nullptr) g_active = &vector_impl();
  return *g_active;
}

}  // namespace

namespace detail {

acc_t dot_i16_dispatch(const std::int16_t* w, const std::int16_t* in,
                       std::int64_t n) {
  return active_impl().dot(w, in, n);
}

void axpy_i16_dispatch(acc_t* out, const std::int16_t* in, std::int16_t w,
                       std::int64_t n) {
  active_impl().axpy(out, in, w, n);
}

}  // namespace detail

const char* isa_name() { return active_impl().name; }

int lanes() { return active_impl().lanes; }

bool active() { return active_impl().lanes > 1; }

void set_enabled(bool on) { g_active = on ? &vector_impl() : &kScalar; }

}  // namespace ftdl::simd
