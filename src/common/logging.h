// Tiny leveled logger. Default level is Warn so library code stays quiet in
// tests and benches; examples raise it to Info for narrative output.
#pragma once

#include <string>

namespace ftdl {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

/// Global log threshold (messages below it are dropped).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at `level` to stderr if enabled.
void log(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& msg) { log(LogLevel::Debug, msg); }
inline void log_info(const std::string& msg) { log(LogLevel::Info, msg); }
inline void log_warn(const std::string& msg) { log(LogLevel::Warn, msg); }

}  // namespace ftdl
