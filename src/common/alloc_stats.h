// ftdl::alloc_stats — a scoped heap-allocation counter for zero-alloc tests.
//
// The serving runtime promises zero heap allocations per inference once its
// arenas are warm. That claim is pinned by counting operator new calls on
// the worker thread while a request executes:
//
//   * the worker wraps each request in an ArmScope (two thread-local
//     increments — negligible in production);
//   * a test translation unit may replace the global operator new/delete to
//     call note_alloc() and flag installed(); armed allocations then land in
//     the process-wide counter;
//   * without that TU (production binaries, sanitizer builds that own the
//     allocator) nothing is counted and armed() stays 0 — tests check
//     installed() and skip.
//
// Counting is per-thread armed but globally accumulated, so concurrent
// workers all contribute to the same counter.
#pragma once

#include <atomic>
#include <cstdint>

namespace ftdl::alloc_stats {

namespace detail {
inline std::atomic<std::int64_t> g_armed_allocs{0};   // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)
inline std::atomic<bool> g_hook_installed{false};     // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)
inline thread_local int t_arm_depth = 0;              // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)
}  // namespace detail

/// Counts allocations made by the calling thread while any ArmScope lives.
class ArmScope {
 public:
  ArmScope() { ++detail::t_arm_depth; }
  ~ArmScope() { --detail::t_arm_depth; }
  ArmScope(const ArmScope&) = delete;
  ArmScope& operator=(const ArmScope&) = delete;
};

/// Called by a replaced operator new (tests/alloc_hook.cpp). Must be
/// async-signal-free and allocation-free.
inline void note_alloc() {
  if (detail::t_arm_depth > 0)
    detail::g_armed_allocs.fetch_add(1, std::memory_order_relaxed);
}

/// Marks the operator-new replacement as linked into this binary.
inline void set_hook_installed() {
  detail::g_hook_installed.store(true, std::memory_order_relaxed);
}

/// True when a counting operator new is linked in (armed() is meaningful).
inline bool hook_installed() {
  return detail::g_hook_installed.load(std::memory_order_relaxed);
}

/// Total armed allocations so far, across all threads.
inline std::int64_t armed() {
  return detail::g_armed_allocs.load(std::memory_order_relaxed);
}

}  // namespace ftdl::alloc_stats
