// Minimal CSV writer used by benches to export figure data (Fig. 6 curves,
// Fig. 7 scatter points) for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ftdl {

/// Writes rows of string cells as RFC-4180-ish CSV (quotes cells containing
/// separators). The file is flushed and closed by the destructor.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws ftdl::Error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row; must have the same arity as the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with %.6g.
  void row_numeric(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::string path_;
  std::size_t arity_;
  std::ofstream out_;
};

}  // namespace ftdl
