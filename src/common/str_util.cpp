#include "common/str_util.h"

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ftdl {

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string format_hz(double hz) {
  if (hz >= 1e9) return strformat("%.2f GHz", hz / 1e9);
  if (hz >= 1e6) return strformat("%.1f MHz", hz / 1e6);
  if (hz >= 1e3) return strformat("%.1f kHz", hz / 1e3);
  return strformat("%.0f Hz", hz);
}

std::string format_bytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0 * 1024.0)
    return strformat("%.2f GB", bytes / (1024.0 * 1024.0 * 1024.0));
  if (bytes >= 1024.0 * 1024.0) return strformat("%.1f MB", bytes / (1024.0 * 1024.0));
  if (bytes >= 1024.0) return strformat("%.1f KB", bytes / 1024.0);
  return strformat("%.0f B", bytes);
}

std::string format_count(double n) {
  if (n >= 1e9) return strformat("%.2f G", n / 1e9);
  if (n >= 1e6) return strformat("%.2f M", n / 1e6);
  if (n >= 1e3) return strformat("%.2f K", n / 1e3);
  return strformat("%.0f", n);
}

std::string format_percent(double ratio, int decimals) {
  return strformat("%.*f%%", decimals, ratio * 100.0);
}

bool parse_int_strict(const char* s, std::int64_t min_v, std::int64_t max_v,
                      std::int64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if (v < min_v || v > max_v) return false;
  *out = v;
  return true;
}

bool parse_double_strict(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

std::string join_x(const std::vector<std::int64_t>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += " x ";
    out += std::to_string(v[i]);
  }
  return out;
}

}  // namespace ftdl
