#include "common/logging.h"

#include <cstdio>

namespace ftdl {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[ftdl %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace ftdl
