// ASCII table printer: benches use it to render the paper's tables
// (Table I, Table II) directly on stdout.
#pragma once

#include <string>
#include <vector>

namespace ftdl {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void row(std::vector<std::string> cells);

  /// Renders with column alignment and +---+ separators.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftdl
